package traffic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/dsp"
	"repro/internal/fec"
	"repro/internal/frontend"
	"repro/internal/modem"
	"repro/internal/payload"
	"repro/internal/pipeline"
	"repro/internal/switchfab"
)

// DropPolicy selects how a full downlink queue is handled.
type DropPolicy int

const (
	// DropTail discards the newest packet when a beam's queue is full.
	DropTail DropPolicy = iota
	// Backpressure throttles at the source instead: a terminal is only
	// granted as many cells as its destination beam queue can still
	// absorb, so packets are held at the terminals rather than dropped
	// in the sky. DropTail remains the safety net for packets already
	// in flight (e.g. when uplink losses were overestimated).
	Backpressure
)

// String implements fmt.Stringer.
func (p DropPolicy) String() string {
	if p == Backpressure {
		return "backpressure"
	}
	return "drop-tail"
}

// Config parameterizes an engine run.
type Config struct {
	// Frame is the MF-TDMA grid used for both the return and forward
	// link; Frame.Carriers must not exceed the payload's carrier count.
	Frame modem.FrameConfig
	// Plan is the downlink carrier plan; the zero value selects
	// DefaultPlan(Frame.Carriers).
	Plan frontend.CarrierPlan
	// QueueDepth bounds each (beam, class) downlink queue in packets —
	// per class, so a best-effort backlog cannot evict a priority
	// class's buffer space (single-class runs see the familiar per-beam
	// bound).
	QueueDepth int
	// Policy selects the overload behaviour of the bounded queues.
	Policy DropPolicy
	// Scheduler fills downlink slots from the switching fabric's class
	// queues; nil selects switchfab.FIFO (arrival order, bit-identical
	// to the pre-fabric engine on single-class runs).
	Scheduler switchfab.Scheduler
	// EbN0dB applies AWGN to every uplink burst at the given Eb/N0;
	// zero or negative leaves the uplink noiseless.
	EbN0dB float64
	// Verify demodulates the transmitted downlink on a ground receiver
	// and checks every delivered packet bit for bit.
	Verify bool
	// Seed drives the terminal payload bits and the channel noise.
	Seed int64
}

// DefaultConfig returns a bounded, noiseless, unverified configuration
// on the default 6-carrier frame.
func DefaultConfig() Config {
	return Config{
		Frame:      modem.DefaultFrameConfig(),
		QueueDepth: 32,
		Policy:     DropTail,
		Seed:       1,
	}
}

// DefaultPlan returns a downlink carrier plan at the payload's 4
// samples/symbol with the carriers spread evenly inside Nyquist.
func DefaultPlan(carriers int) frontend.CarrierPlan {
	spacing := 0.8 / float64(carriers)
	if spacing > 0.2 {
		spacing = 0.2
	}
	return frontend.CarrierPlan{Carriers: carriers, Spacing: spacing, Decim: 4}
}

// InfoBitsFor returns the largest info-bit count whose codeword fits the
// burst payload budget (byte-ish granularity, as the link dimensioning
// tools use throughout the repo).
func InfoBitsFor(c fec.Codec, budget int) int {
	k := 16
	for c.EncodedLen(k+8) <= budget {
		k += 8
	}
	return k
}

// uplinkCell is one granted (carrier, slot) cell of the current frame.
type uplinkCell struct {
	asg  modem.SlotAssignment
	term *termState
	info []byte
}

// sentCell is one downlink burst of the current frame.
type sentCell struct {
	pkt  switchfab.Packet
	cell modem.SlotAssignment
}

// ingestPlan is one generation of the ingest-side frame plan: the flat
// info-bit backing, the granted-cell list sub-slicing it, and the
// receive-path assignment/meta slices. The engine alternates between
// two generations by frame parity so a pipelined run's ingest of frame
// N+1 never rewrites a buffer that frame N's still-running egress could
// reference (packets decoded from these cells carry fresh bit slices,
// but the plan metadata itself must survive until the frame's report
// accounting is done).
type ingestPlan struct {
	infoBuf []byte
	cells   []uplinkCell
	asgs    []modem.SlotAssignment
	metas   []payload.RouteMeta
}

// egressGen is one generation of the egress-side frame state: the
// downlink transmit grid and the sent-cell list the ground verifier
// walks. Two generations alternate by frame parity, so the scheduler
// fill of frame N+1 (control thread, at the handoff) writes its
// generation while frame N's egress worker still reads the other.
type egressGen struct {
	grid [][][]byte
	sent []sentCell
}

// framePrep is the per-frame plan handed from beginFrame through
// ingest, fill and egress: the frame index, the codec in force and the
// burst's info-bit budget resolved once in the frame prologue, plus the
// parity-selected scratch generations. A pipelined run ships it to the
// egress worker, so egress never re-reads engine fields the next
// frame's prologue may rewrite.
type framePrep struct {
	f     int
	k     int
	codec fec.Codec
	t0    time.Time
	plan  *ingestPlan
	gen   *egressGen
}

// egressDelta is the ground-verify outcome of one frame's egress,
// returned to the caller instead of written to the shared report so a
// concurrent ingest never races the verify counters; foldVerify merges
// it — immediately after egress on the sequential path, at the next
// join or drain on the pipelined one.
type egressDelta struct {
	lost    int
	bitErrs int
}

// clsAccum collects engine-side per-class delivery statistics; the
// fabric-side counters (routed, dropped, high water) merge in at
// snapshot time (perClass).
type clsAccum struct {
	delivered int
	bits      int
	reencode  int
	latSum    int
	latMax    int
}

// Engine drives the closed regenerative loop frame after frame. Since
// the switching fabric landed there is no engine-owned queue layer: the
// payload's fabric is the single downlink queue — uplink receipts
// enter it as typed packets (class, terminal, ingress frame) and the
// downlink scheduler pops them straight into the transmit grid.
type Engine struct {
	pl      *payload.Payload
	tx      *payload.Transmitter
	sched   *modem.SlotScheduler
	fab     *switchfab.Fabric
	dlsched switchfab.Scheduler
	cfg     Config

	// terms is the population in join order, departed terminals
	// included (active=false) so their statistics survive a mid-run
	// leave; rngSeq counts terminals ever admitted so each gets a
	// stable deterministic seed regardless of later joins/leaves. byID
	// indexes the active terminals, so admission checks and event
	// lookups stay O(1) through join/leave storms.
	terms  []*termState
	byID   map[string]*termState
	rngSeq int64

	// pops are the aggregate populations (two-tier model): one popState
	// per Population, with per-(population, beam) block state. beamAgg
	// groups the blocks by physical beam for the per-beam routing tasks.
	pops    []*popState
	beamAgg [][]*popBeam

	frame int

	mods    sync.Pool // terminal-side burst modulators
	chans   sync.Pool // per-burst uplink channels (Reseed'd each use)
	encBufs sync.Pool // *[]byte encode scratch, padded to the burst budget
	gdemux  *frontend.Demux
	gdems   sync.Pool // ground-side burst demodulators

	// scratch reused across frames. fc, room and aggBits are single
	// buffers because every stage that touches them runs on the control
	// thread (ingest and fill); the per-frame plan and grid state below
	// is double-buffered so a pipelined run's egress of frame N can keep
	// reading its generation while frame N+1's ingest writes the other.
	fc      *modem.FrameComposer
	room    [][switchfab.NumClasses]int
	aggBits []byte // shared k-bit payload stand-in for aggregate packets

	// plans are the ingest-side frame plans — flat info-bit backing,
	// granted-cell list over it, receive-path assignment/meta slices —
	// and gens the egress-side frame state — transmit grid plus the
	// sent-cell list the ground verifier walks. Frame parity picks the
	// generation (beginFrame), which is the double-buffer half of the
	// stage-ownership contract (DESIGN §12): no buffer is rewritten by
	// ingest while a still-running egress could read it.
	plans [2]ingestPlan
	gens  [2]egressGen

	// fill is the frame-scoped state every beam's fill task reads while
	// the downlink scheduler pops packets into the transmit grid; it is
	// written once per frame before the tasks fan out and read-only
	// underneath them.
	fill struct {
		frame  int
		codec  fec.Codec
		budget int
		gen    *egressGen
	}
	// beams is the per-beam downlink fill state (slot cursor, sent
	// cells, per-class delivery deltas, preallocated emit closure): each
	// beam's schedule/fill runs as its own pipeline task touching only
	// its entry, and the deltas merge into the run totals in beam order
	// after the fan-in — bit-identical to the old sequential fill.
	beams      []beamState
	aggPending bool // a dama pass granted aggregate cells this frame

	met    Report
	cls    [switchfab.NumClasses]clsAccum
	latSum int
	wall   time.Duration

	// stages, when attached, receives one per-stage duration sample per
	// frame (see StageTimers). Nil means the untimed hot path: no clock
	// reads at all.
	stages *StageTimers
}

// termState is one terminal's live engine state: the terminal itself,
// its deterministic payload-bit RNG, and its accumulated statistics.
// Queued packets and in-flight cells reference it by pointer, so a
// terminal that leaves mid-run keeps accruing delivery stats for
// packets it already got into the sky. profSince anchors the channel
// profile's Doppler ramp: a profile installed mid-run (join or
// set-channel) starts drifting from its installation frame, not
// retroactively from frame 0.
type termState struct {
	term      Terminal
	rng       *rand.Rand
	stat      TerminalStats
	sync      syncAccum
	active    bool
	profSince int
}

// syncAccum collects per-terminal burst synchronization statistics from
// the uplink receipts; Report reduces them to the published stats.
type syncAccum struct {
	bursts     int
	freqAbsSum float64
	freqAbsMax float64
	uwMin      float64
}

// beamState is one downlink beam's fill-stage state. During the
// schedule stage it is owned exclusively by that beam's task: the task
// holds the fabric shard lock for its beam, writes only its own grid
// row, sent slice and class accumulators, and the per-frame deltas
// merge sequentially afterwards.
type beamState struct {
	beam int
	slot int
	sent []sentCell
	cls  [switchfab.NumClasses]clsAccum
	emit func(switchfab.Packet) bool
}

// popState is one aggregate population's live engine state: the
// definition, its per-beam member blocks, and the request-side
// accounting (written sequentially in dama).
type popState struct {
	def   Population
	beams []popBeam
	stat  PopulationStats
}

// popBeam is one population's member block on one beam. granted hands a
// frame's admitted cells from the sequential dama pass to the per-beam
// routing task; routed/dropped/delivered accounting is cumulative and
// written only by that beam's task (routing and fill), so the shard
// ownership rule holds without atomics.
type popBeam struct {
	ps           *popState
	beam         int
	lo, hi       int // member block [lo, hi)
	untraced     int // members in the block not modeled as tracers
	tracerModels []Model

	granted int // cells admitted this frame, consumed by routing

	routed    int
	dropped   int
	delivered int
	bits      int
	latSum    int
	latMax    int
}

// New builds an engine around a booted TDMA payload. The terminal list
// is the population; order is part of the deterministic contract (DAMA
// requests are issued in slice order every frame).
func New(pl *payload.Payload, cfg Config, terminals []Terminal) (*Engine, error) {
	return NewPopulations(pl, cfg, terminals, nil)
}

// NewPopulations builds an engine over the two-tier population model:
// terminals are full per-terminal sources (tracers included, in the
// join order the caller chose), pops are aggregate populations whose
// untraced remainders request capacity as per-beam block demand after
// the terminal loop each frame. Either list may be empty, not both.
// Frame cost and memory scale with populations + tracers + beams, never
// with Population.Count.
func NewPopulations(pl *payload.Payload, cfg Config, terminals []Terminal, pops []Population) (*Engine, error) {
	if pl.Mode() != payload.ModeTDMA {
		return nil, errors.New("traffic: engine requires the TDMA waveform")
	}
	if cfg.Frame.Carriers < 1 || cfg.Frame.Slots < 1 {
		return nil, errors.New("traffic: frame needs at least one carrier and one slot")
	}
	if cfg.Frame.Carriers > pl.Config().Carriers {
		return nil, fmt.Errorf("traffic: frame has %d carriers, payload serves %d", cfg.Frame.Carriers, pl.Config().Carriers)
	}
	if cfg.QueueDepth < 1 {
		return nil, errors.New("traffic: queue depth must be at least 1")
	}
	if len(terminals) == 0 && len(pops) == 0 {
		return nil, errors.New("traffic: empty terminal population")
	}
	plan := cfg.Plan
	if plan.Carriers == 0 {
		plan = DefaultPlan(cfg.Frame.Carriers)
		cfg.Plan = plan
	}
	if plan.Carriers != cfg.Frame.Carriers {
		return nil, fmt.Errorf("traffic: plan has %d carriers, frame has %d", plan.Carriers, cfg.Frame.Carriers)
	}

	if cfg.Scheduler == nil {
		cfg.Scheduler = switchfab.FIFO{}
	}
	e := &Engine{
		pl:      pl,
		tx:      payload.NewTransmitter(pl, plan),
		sched:   modem.NewSlotScheduler(cfg.Frame),
		fab:     pl.Switch(),
		dlsched: cfg.Scheduler,
		cfg:     cfg,
		room:    make([][switchfab.NumClasses]int, cfg.Frame.Carriers),
		byID:    make(map[string]*termState),
		beamAgg: make([][]*popBeam, cfg.Frame.Carriers),
		beams:   make([]beamState, cfg.Frame.Carriers),
	}
	// The engine is the fabric's exclusive driver for the run: adopting
	// it clears any previous driver's queues and counters and installs
	// the per-(beam, class) bound (see the switchfab ownership rule).
	e.fab.Adopt(cfg.QueueDepth)
	for b := range e.beams {
		bs := &e.beams[b]
		bs.beam = b
		// One closure per beam, allocated once: the per-frame fill path
		// stays allocation-free however many beams run concurrently.
		bs.emit = func(p switchfab.Packet) bool { return e.emitPacket(bs, p) }
	}
	for _, t := range terminals {
		if err := e.admit(t); err != nil {
			return nil, err
		}
	}
	if err := e.adoptPopulations(pops); err != nil {
		return nil, err
	}
	e.resolveSyncConfig()
	for gi := range e.gens {
		g := &e.gens[gi]
		g.grid = make([][][]byte, cfg.Frame.Carriers)
		for c := range g.grid {
			g.grid[c] = make([][]byte, cfg.Frame.Slots)
		}
	}
	e.mods.New = func() any {
		return modem.NewBurstModulator(pl.BurstFormat(), 0.35, 4, 10)
	}
	e.chans.New = func() any { return dsp.NewChannel(0) }
	e.encBufs.New = func() any {
		b := make([]byte, 0, pl.BurstFormat().PayloadBits())
		return &b
	}
	if cfg.Verify {
		e.gdemux = frontend.NewDemux(plan, 95)
		e.gdems.New = func() any {
			return modem.NewBurstDemodulator(pl.BurstFormat(), 0.35, plan.Decim, 10, modem.TimingOerderMeyr)
		}
	}
	return e, nil
}

// admit validates a terminal against the live population and joins it.
func (e *Engine) admit(t Terminal) error {
	if t.ID == "" || t.Model == nil {
		return errors.New("traffic: terminal needs an ID and a model")
	}
	if _, dup := e.byID[t.ID]; dup {
		return fmt.Errorf("traffic: duplicate terminal %q", t.ID)
	}
	if t.Beam < 0 || t.Beam >= e.cfg.Frame.Carriers {
		return fmt.Errorf("traffic: terminal %q beam %d outside the %d-beam downlink", t.ID, t.Beam, e.cfg.Frame.Carriers)
	}
	ts := &termState{
		term:      t,
		rng:       rand.New(rand.NewSource(e.cfg.Seed + e.rngSeq*7919)),
		stat:      TerminalStats{ID: t.ID, Model: t.Model.Name()},
		active:    true,
		profSince: e.frame,
	}
	e.terms = append(e.terms, ts)
	e.byID[t.ID] = ts
	e.rngSeq++
	return nil
}

// adoptPopulations validates the aggregate populations and builds their
// per-beam block state (construction-time only; populations are fixed
// for the run, unlike terminals, which join and leave freely).
func (e *Engine) adoptPopulations(pops []Population) error {
	names := make(map[string]bool, len(pops))
	for _, p := range pops {
		if p.Name == "" || p.Model == nil {
			return errors.New("traffic: population needs a name and an aggregate model")
		}
		if names[p.Name] {
			return fmt.Errorf("traffic: duplicate population %q", p.Name)
		}
		names[p.Name] = true
		if p.Count < 1 {
			return fmt.Errorf("traffic: population %q has %d members", p.Name, p.Count)
		}
		if len(p.Beams) == 0 {
			return fmt.Errorf("traffic: population %q has no beams", p.Name)
		}
		for _, b := range p.Beams {
			if b < 0 || b >= e.cfg.Frame.Carriers {
				return fmt.Errorf("traffic: population %q beam %d outside the %d-beam downlink", p.Name, b, e.cfg.Frame.Carriers)
			}
		}
		if len(p.TracerMembers) > p.Count {
			return fmt.Errorf("traffic: population %q traces %d of %d members", p.Name, len(p.TracerMembers), p.Count)
		}
		for i, m := range p.TracerMembers {
			if m < 0 || m >= p.Count {
				return fmt.Errorf("traffic: population %q tracer member %d outside [0, %d)", p.Name, m, p.Count)
			}
			if i > 0 && m <= p.TracerMembers[i-1] {
				return fmt.Errorf("traffic: population %q tracer members not sorted ascending", p.Name)
			}
		}
		ps := &popState{
			def: p,
			stat: PopulationStats{
				Name:    p.Name,
				Model:   p.Model.Name(),
				Class:   p.Class.String(),
				Members: p.Count,
				Tracers: len(p.TracerMembers),
			},
		}
		nb := len(p.Beams)
		ps.beams = make([]popBeam, nb)
		ti := 0
		for bi := 0; bi < nb; bi++ {
			lo, hi := memberBlock(bi, p.Count, nb)
			pb := &ps.beams[bi]
			pb.ps = ps
			pb.beam = p.Beams[bi]
			pb.lo, pb.hi = lo, hi
			for ti < len(p.TracerMembers) && p.TracerMembers[ti] < hi {
				pb.tracerModels = append(pb.tracerModels, p.Model.Member(p.TracerMembers[ti]))
				ti++
			}
			pb.untraced = (hi - lo) - len(pb.tracerModels)
			e.beamAgg[pb.beam] = append(e.beamAgg[pb.beam], pb)
		}
		e.pops = append(e.pops, ps)
	}
	return nil
}

// resolveSyncConfig re-resolves the payload's burst synchronization
// chain against the current population. An impaired population needs
// the full chain: feedforward CFO recovery before the UW search and
// residual phase tracking across the payload. A clean population keeps
// (or, after an impaired stretch — e.g. a fade that has cleared —
// restores) the boot default, the legacy UW-phase-only chain, so
// clean-channel runs stay bit-identical to engines predating channel
// profiles. An explicitly configured payload is left alone; only
// engine-chosen defaults (SetSyncConfigAuto) are ever replaced. It is
// called at construction and whenever the population's impairments
// change mid-run (join, leave, channel-profile update).
func (e *Engine) resolveSyncConfig() {
	if e.pl.SyncConfigExplicit() {
		return
	}
	impaired := false
	for _, ts := range e.terms {
		if ts.active && ts.term.Channel.Impaired() {
			impaired = true
			break
		}
	}
	if impaired {
		// The unique-word threshold is lifted above the legacy 0.6:
		// the candidate search triples the per-slot UW scans, and a
		// pure-noise scan's best metric tails past 0.7 often enough
		// that the legacy threshold would false-lock, while true
		// locks at the coded-regime Es/N0 stay above 0.82 (see the
		// modem noise-rejection tests).
		e.pl.SetSyncConfigAuto(modem.SyncConfig{UWThreshold: 0.7, FreqRecovery: true, PhaseTrack: true})
	} else if e.pl.SyncConfigAuto() {
		e.pl.SetSyncConfigAuto(modem.SyncConfig{})
	}
}

// AddTerminal joins a terminal to the live population. Call it only at
// a frame boundary (between Step calls); the terminal issues its first
// DAMA request on the next frame, with demand evaluated at the absolute
// frame number. The join re-resolves the payload sync chain, so an
// impaired newcomer switches an until-now clean population onto the
// full burst synchronization chain.
func (e *Engine) AddTerminal(t Terminal) error {
	if err := e.admit(t); err != nil {
		return err
	}
	e.resolveSyncConfig()
	return nil
}

// RemoveTerminal departs a terminal at a frame boundary: its scheduler
// holdings are released immediately, while packets it already got into
// the downlink queues still drain (and still count toward its stats).
// The departed terminal keeps its row in Report.PerTerminal.
func (e *Engine) RemoveTerminal(id string) error {
	ts, err := e.lookup(id)
	if err != nil {
		return err
	}
	ts.active = false
	delete(e.byID, id)
	e.sched.Release(id)
	e.resolveSyncConfig()
	return nil
}

// SetTerminalChannel replaces a terminal's uplink channel profile at a
// frame boundary (nil restores the ideal channel) — the scripted-fade /
// Doppler-ramp hook. The profile's Doppler ramp is re-anchored at the
// upcoming frame, so Drift means "start drifting from here" rather
// than a retroactive jump of Drift×frames. The payload sync chain is
// re-resolved, so the first impairing profile switches the demodulator
// bank onto the full chain and the last clearing one restores the
// legacy chain.
func (e *Engine) SetTerminalChannel(id string, p *ChannelProfile) error {
	ts, err := e.lookup(id)
	if err != nil {
		return err
	}
	ts.term.Channel = p
	ts.profSince = e.frame
	e.resolveSyncConfig()
	return nil
}

// SetQueueDepth rebounds the per-(beam, class) downlink queues at a
// frame boundary. A shrink does not evict packets already queued: the
// bound applies to subsequent enqueues (and, under Backpressure, to
// subsequent admission), so over-deep queues drain naturally.
func (e *Engine) SetQueueDepth(depth int) error {
	if depth < 1 {
		return fmt.Errorf("traffic: queue depth %d, must be at least 1", depth)
	}
	e.cfg.QueueDepth = depth
	e.fab.SetDepth(depth)
	return nil
}

// SetQueuePolicy switches the overload policy at a frame boundary.
func (e *Engine) SetQueuePolicy(p DropPolicy) { e.cfg.Policy = p }

// SetScheduler swaps the downlink scheduler at a frame boundary — the
// set-scheduler scenario event. Queued packets stay queued; only the
// order (and share) in which they reach the transmit grid changes. A
// nil scheduler is an error, not a silent FIFO reset.
func (e *Engine) SetScheduler(s switchfab.Scheduler) error {
	if s == nil {
		return errors.New("traffic: nil downlink scheduler")
	}
	e.dlsched = s
	e.cfg.Scheduler = s
	return nil
}

// SetTerminalClass reassigns a terminal's traffic class at a frame
// boundary — the set-class scenario event. Packets already queued keep
// the class they were routed with; subsequent uplink packets carry the
// new marking.
func (e *Engine) SetTerminalClass(id string, c switchfab.Class) error {
	if c >= switchfab.NumClasses {
		return fmt.Errorf("traffic: unknown traffic class %d", c)
	}
	ts, err := e.lookup(id)
	if err != nil {
		return err
	}
	ts.term.Class = c
	return nil
}

// lookup finds an active terminal by ID through the index map — O(1)
// whatever the population size or join/leave history.
func (e *Engine) lookup(id string) (*termState, error) {
	if ts, ok := e.byID[id]; ok {
		return ts, nil
	}
	return nil, fmt.Errorf("traffic: unknown terminal %q", id)
}

// Terminals returns the active population in join order.
func (e *Engine) Terminals() []Terminal {
	var out []Terminal
	for _, ts := range e.terms {
		if ts.active {
			out = append(out, ts.term)
		}
	}
	return out
}

// Populations returns the aggregate population definitions (empty for
// a purely per-terminal engine).
func (e *Engine) Populations() []Population {
	out := make([]Population, len(e.pops))
	for i, ps := range e.pops {
		out[i] = ps.def
	}
	return out
}

// Config returns the engine configuration as currently in force
// (queue depth and policy may have changed since construction).
func (e *Engine) Config() Config { return e.cfg }

// Frame returns the number of frames processed so far.
func (e *Engine) Frame() int { return e.frame }

// QueueDepth returns the packets currently queued for a beam across
// all classes, 0 for a beam outside the downlink (no panic: observers
// probe freely).
func (e *Engine) QueueDepth(beam int) int {
	if beam < 0 || beam >= e.cfg.Frame.Carriers {
		return 0
	}
	return e.fab.QueueDepth(beam)
}

// Scheduler returns the downlink scheduler in force.
func (e *Engine) Scheduler() switchfab.Scheduler { return e.dlsched }

// RunFrames advances the closed loop by n consecutive frames. It may be
// called repeatedly — e.g. around a ground-initiated reconfiguration —
// with queues, scheduler state and metrics carrying over. A
// non-positive n is an explicit error rather than a silent no-op.
func (e *Engine) RunFrames(n int) error {
	if n <= 0 {
		return fmt.Errorf("traffic: RunFrames(%d): frame count must be positive", n)
	}
	for i := 0; i < n; i++ {
		if err := e.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step advances the closed loop by exactly one frame — the unit the
// scenario runtime schedules events and snapshots metrics around.
func (e *Engine) Step() error {
	start := time.Now()
	defer func() { e.wall += time.Since(start) }()
	return e.step()
}

// step runs one frame through the loop: prologue, the ingest
// half-frame, the scheduler fill at the fabric handoff, then the egress
// half-frame with its verify outcome folded immediately. The
// PipelinedRunner drives exactly the same four stages, overlapping the
// previous frame's egress with this frame's ingest and fill; the stage
// boundaries and ownership rules are documented in DESIGN §12.
func (e *Engine) step() error {
	pf, ok := e.beginFrame()
	if !ok {
		return nil
	}
	if err := e.ingest(&pf); err != nil {
		return err
	}
	e.fillFrame(&pf)
	d, err := e.egress(&pf)
	e.foldVerify(d)
	return err
}

// beginFrame is the frame prologue shared by the sequential and
// pipelined step paths: it advances the frame clock, checks the payload
// can carry traffic (a mid-reconfiguration frame counts as an outage
// and runs no stage), resolves the codec and info-bit budget, and picks
// the frame's scratch generations by parity. ok=false means the frame
// is already fully accounted (outage) and no stage must run.
func (e *Engine) beginFrame() (framePrep, bool) {
	f := e.frame
	e.frame++
	e.met.Frames++

	codec, err := e.pl.Codec()
	if err != nil || !e.pl.Chipset().FunctionHealthy(payload.FuncCoding) ||
		!e.pl.Chipset().FunctionHealthy(payload.FuncSwitch) {
		// Mid-reconfiguration: no coding function on board, so neither
		// link carries traffic this frame; queued packets wait it out.
		e.met.OutageFrames++
		return framePrep{}, false
	}
	budget := e.pl.BurstFormat().PayloadBits()
	k := InfoBitsFor(codec, budget)
	e.pl.SetBurstCodedBits(codec.EncodedLen(k))

	pf := framePrep{f: f, k: k, codec: codec, plan: &e.plans[f&1], gen: &e.gens[f&1]}
	if e.stages != nil {
		pf.t0 = time.Now()
	}
	return pf, true
}

// ingest is the frame's first half-stage — DAMA grant, terminal-side
// burst synthesis, payload receive and fabric routing. It runs on the
// engine's control thread only: it owns the terminal states, the slot
// scheduler, the frame composer and the fabric's route side, none of
// which the concurrent egress of the previous frame touches.
func (e *Engine) ingest(pf *framePrep) error {
	cells := e.dama(pf)
	return e.uplink(pf, cells)
}

// foldVerify merges a frame's deferred ground-verify outcome into the
// run report. The sequential step folds right after egress; a pipelined
// run folds at the join, so mid-run Metrics snapshots may lag the
// verify counters by the one in-flight frame until the runner drains.
func (e *Engine) foldVerify(d egressDelta) {
	e.met.DownlinkLost += d.lost
	e.met.DownlinkBitErrs += d.bitErrs
}

// dama releases last frame's burst time plan and grants this frame's:
// every terminal, in population order, requests its model's demand,
// clipped to the remaining frame capacity (and, under Backpressure, to
// the room left in its destination (beam, class) queue — admission
// control is class-aware, so a best-effort backlog throttles only
// best-effort sources).
func (e *Engine) dama(pf *framePrep) []uplinkCell {
	f, k, plan := pf.f, pf.k, pf.plan
	for _, ts := range e.terms {
		if ts.active {
			e.sched.Release(ts.term.ID)
		}
	}
	var room [][switchfab.NumClasses]int
	if e.cfg.Policy == Backpressure {
		room = e.room
		for b := range room {
			for c := 0; c < switchfab.NumClasses; c++ {
				room[b][c] = e.cfg.QueueDepth - e.fab.ClassQueueDepth(b, switchfab.Class(c))
			}
		}
	}
	// Per-cell info bits live in one flat frame-scoped buffer sized for
	// the worst case (every slot granted); cells sub-slice it, so a
	// frame's worth of payload generation costs zero allocations once
	// the buffer and cell slice reach steady state.
	if need := e.sched.Capacity() * k; cap(plan.infoBuf) < need {
		plan.infoBuf = make([]byte, need)
	}
	buf, off := plan.infoBuf[:cap(plan.infoBuf)], 0
	cells := plan.cells[:0]
	for _, ts := range e.terms {
		if !ts.active {
			continue
		}
		t := ts.term
		d := t.Model.Demand(f)
		e.met.OfferedCells += d
		ts.stat.OfferedCells += d
		if d == 0 {
			continue
		}
		if room != nil {
			r := &room[t.Beam][t.Class]
			if d > *r {
				e.met.ThrottledCells += d - max(*r, 0)
				d = *r
			}
			if d <= 0 {
				continue
			}
			*r -= d
		}
		if free := e.sched.Capacity() - e.sched.Allocated(); d > free {
			e.met.DeniedCells += d - free
			d = free
		}
		if d == 0 {
			continue
		}
		asgs, err := e.sched.Request(t.ID, d)
		if err != nil {
			// Cannot happen after the clamp; keep the loop total anyway.
			e.met.DeniedCells += d
			continue
		}
		e.met.GrantedCells += len(asgs)
		ts.stat.GrantedCells += len(asgs)
		for _, a := range asgs {
			info := buf[off : off+k : off+k]
			off += k
			for i := range info {
				info[i] = byte(ts.rng.Intn(2))
			}
			cells = append(cells, uplinkCell{asg: a, term: ts, info: info})
		}
	}
	plan.cells = cells
	e.damaAggregates(f, k, room)
	return cells
}

// damaAggregates runs the aggregate side of admission control after the
// terminal loop: tracers are pinned measurement channels that request
// first, the untraced remainder of each population block competes for
// what is left of the frame. Aggregate cells are flow-level — no slots
// are physically assigned and no waveform is synthesized — but they
// consume uplink capacity, respect backpressure room and enter the
// fabric's bounded queues like any decoded packet, so queue pressure
// and QoS behaviour at scale are real. With every member traced
// (untraced == 0 throughout) this pass touches nothing and the engine
// is bit-identical to the per-terminal path.
func (e *Engine) damaAggregates(f, k int, room [][switchfab.NumClasses]int) {
	e.aggPending = false
	if len(e.pops) == 0 {
		return
	}
	aggAlloc := 0
	for _, ps := range e.pops {
		for i := range ps.beams {
			pb := &ps.beams[i]
			pb.granted = 0
			if pb.untraced == 0 {
				continue
			}
			// The block total covers tracer members too; subtracting
			// their individual draws leaves exactly the untraced
			// remainder's demand (exact for the analytic models, clamped
			// for the statistical ones).
			d := ps.def.Model.BlockDemand(f, pb.lo, pb.hi)
			for _, tm := range pb.tracerModels {
				d -= tm.Demand(f)
			}
			if d < 0 {
				d = 0
			}
			e.met.OfferedCells += d
			ps.stat.OfferedCells += d
			if d == 0 {
				continue
			}
			if room != nil {
				r := &room[pb.beam][ps.def.Class]
				if d > *r {
					t := d - max(*r, 0)
					e.met.ThrottledCells += t
					ps.stat.ThrottledCells += t
					d = *r
				}
				if d <= 0 {
					continue
				}
				*r -= d
			}
			if free := e.sched.Capacity() - e.sched.Allocated() - aggAlloc; d > free {
				e.met.DeniedCells += d - free
				ps.stat.DeniedCells += d - free
				d = free
			}
			if d <= 0 {
				continue
			}
			aggAlloc += d
			pb.granted = d
			e.aggPending = true
			e.met.GrantedCells += d
			ps.stat.GrantedCells += d
			ps.stat.UplinkBits += d * k
		}
	}
}

// routeAggregates enqueues the frame's granted aggregate cells into the
// switching fabric, one task per beam (the fabric shards per beam, so
// the tasks never contend): each beam routes its populations' grants in
// population order — deterministic per shard — after the frame's
// decoded tracer bursts. All aggregate packets of a frame share one
// zeroed k-bit payload, so delivered-bit accounting is exact at zero
// per-packet allocation.
func (e *Engine) routeAggregates(f, k int) {
	if !e.aggPending {
		return
	}
	e.aggPending = false
	if len(e.aggBits) != k {
		e.aggBits = make([]byte, k)
	}
	pipeline.ForEach(len(e.beamAgg), func(b int) {
		for _, pb := range e.beamAgg[b] {
			n := pb.granted
			if n == 0 {
				continue
			}
			pb.granted = 0
			pkt := switchfab.Packet{Bits: e.aggBits, Class: pb.ps.def.Class, Term: pb, Ingress: f}
			for i := 0; i < n; i++ {
				if e.fab.RoutePacket(b, pkt) {
					pb.routed++
				} else {
					pb.dropped++
				}
			}
		}
	})
}

// uplink modulates the burst time plan into an MF-TDMA frame and passes
// it through the payload's concurrent receive pipeline; decoded packets
// enter the switching fabric's bounded class queues directly (typed
// with class, terminal and ingress frame), so there is no second
// engine-owned queue layer to copy into.
// When stage timers are attached, the frame's synthesis stage spans
// from the prologue timestamp (taken before DAMA) through the
// modulation fan-out, and the receive stage covers the payload pipeline
// plus receipt accounting — one observation each per frame, idle frames
// included, so per-stage sample counts line up with the frame count.
func (e *Engine) uplink(pf *framePrep, cells []uplinkCell) error {
	f, k, codec := pf.f, pf.k, pf.codec
	if len(cells) == 0 {
		if e.stages != nil {
			observeTimer(e.stages.Synthesis, time.Since(pf.t0).Nanoseconds())
		}
		var tRecv time.Time
		if e.stages != nil {
			tRecv = time.Now()
		}
		e.routeAggregates(f, k)
		if e.stages != nil {
			observeTimer(e.stages.Receive, time.Since(tRecv).Nanoseconds())
		}
		return nil
	}
	if e.fc == nil {
		e.fc = modem.NewFrameComposer(e.cfg.Frame, 4)
	} else {
		e.fc.Reset()
	}
	fc := e.fc
	if cap(pf.plan.asgs) < len(cells) {
		pf.plan.asgs = make([]modem.SlotAssignment, len(cells))
	}
	asgs := pf.plan.asgs[:len(cells)]
	noisy := e.cfg.EbN0dB > 0
	esN0 := 0.0
	if noisy {
		esN0 = e.cfg.EbN0dB + 10*math.Log10(2*codec.Rate())
	}
	budget := e.pl.BurstFormat().PayloadBits()
	const uplinkSPS = 4
	metas := pf.plan.metas[:0]
	for _, c := range cells {
		metas = append(metas, payload.RouteMeta{
			Beam:     c.term.term.Beam,
			Class:    c.term.term.Class,
			Term:     c.term,
			Ingress:  f,
			InfoBits: k,
		})
	}
	pf.plan.metas = metas
	pipeline.ForEach(len(cells), func(i int) {
		c := cells[i]
		asgs[i] = c.asg
		// Encode into pooled scratch, zero-padded to the burst budget
		// (and truncated to it, matching the old copy-into-fresh-buffer
		// semantics when a codec overshoots).
		pb := e.encBufs.Get().(*[]byte)
		padded := fec.AppendEncode(codec, (*pb)[:0], c.info)
		if len(padded) > budget {
			padded = padded[:budget]
		}
		for len(padded) < budget {
			padded = append(padded, 0)
		}
		// Modulate straight into the frame composer's slot: slots are
		// disjoint per assignment, so the concurrent workers never touch
		// the same samples, and Reset has already zeroed the tail beyond
		// the burst waveform.
		mod := e.mods.Get().(*modem.BurstModulator)
		var wave dsp.Vec
		slotDirect := mod.WaveformLen() <= fc.Config().SlotSymbols*uplinkSPS
		if slotDirect {
			wave = mod.ModulateInto(fc.SlotWaveform(c.asg), padded)
		} else {
			wave = mod.Modulate(padded)
		}
		e.mods.Put(mod)
		*pb = padded
		e.encBufs.Put(pb)
		prof := c.term.term.Channel
		if noisy || prof != nil {
			cellEsN0 := esN0
			if prof != nil && prof.EsN0dB != 0 {
				cellEsN0 = prof.EsN0dB
			} else if !noisy {
				cellEsN0 = 300 // effectively noiseless
			}
			ch := e.chans.Get().(*dsp.Channel)
			ch.Reseed(e.cfg.Seed + int64(f)*100003 + int64(i))
			ch.EsN0dB = cellEsN0
			ch.SPS = uplinkSPS
			ch.PhaseOffset = 0
			ch.FreqOffset = 0
			ch.FreqDrift = 0
			ch.TimingOffset = 0
			ch.Gain = 1
			if prof != nil {
				// Frequency figures are per symbol and the channel works
				// per sample, so CFO/Drift divide by the oversampling;
				// Timing is already a sample offset and passes through.
				// Drift ramps from the frame the profile was installed
				// (0 for a boot-time population, so PR 3 runs are
				// unchanged).
				ch.FreqOffset = (prof.CFO + prof.Drift*float64(f-c.term.profSince)) / uplinkSPS
				ch.PhaseOffset = prof.Phase
				ch.TimingOffset = prof.Timing
				if prof.Gain != 0 {
					ch.Gain = prof.Gain
				}
			}
			ch.ApplyInPlace(wave)
			e.chans.Put(ch)
		}
		if !slotDirect {
			fc.PlaceBurst(c.asg, wave)
		}
	})

	var tRecv time.Time
	if e.stages != nil {
		tRecv = time.Now()
		observeTimer(e.stages.Synthesis, tRecv.Sub(pf.t0).Nanoseconds())
	}
	receipts := e.pl.ReceiveFrameAndRouteQoS(fc, asgs, metas)
	for i, r := range receipts {
		e.met.UplinkBursts++
		// Only receipts whose demodulation actually ran carry sync
		// diagnostics; a burst lost to a service outage would otherwise
		// pin the terminal's worst-UW stat to zero.
		if r.Sync.Scanned {
			sa := &cells[i].term.sync
			sa.bursts++
			af := math.Abs(r.Sync.FreqEst)
			sa.freqAbsSum += af
			if af > sa.freqAbsMax {
				sa.freqAbsMax = af
			}
			if sa.bursts == 1 || r.Sync.UWMetric < sa.uwMin {
				sa.uwMin = r.Sync.UWMetric
			}
		}
		if r.Err != nil {
			e.met.UplinkFailures++
			continue
		}
		e.met.UplinkBitErrs += fec.CountBitErrors(cells[i].info, r.Bits[:k])
		cells[i].term.stat.UplinkBits += k
		// Queue-full tail drops happened inside the fabric, per class;
		// Metrics folds its counters into the report.
	}
	// Aggregate grants arrive behind the frame's decoded bursts: same
	// ingress frame, deterministic per-shard order.
	e.routeAggregates(f, k)
	if e.stages != nil {
		observeTimer(e.stages.Receive, time.Since(tRecv).Nanoseconds())
	}
	return nil
}

// fillFrame is the ownership handoff at the fabric boundary: the
// downlink scheduler pops queued packets into this frame's transmit
// grid generation — one pipeline task per beam over beam-owned state
// (the beam's fabric shard, grid row, sent slice and beamState
// accumulators) — and the per-frame deltas merge into the run totals in
// beam order, bit-identical to a sequential fill. It runs on the
// control thread between ingest and egress dispatch: the fill is the
// one downlink-side stage that must not overlap the next frame's
// ingest, because backpressure admission (dama) reads the post-fill
// queue depths. After fillFrame returns, every report counter of the
// frame except the deferred ground-verify outcome is final — that is
// the handoff snapshot a pipelined run's per-frame observers read.
func (e *Engine) fillFrame(pf *framePrep) {
	var t time.Time
	if e.stages != nil {
		t = time.Now()
	}
	g := pf.gen
	e.fill.frame = pf.f
	e.fill.codec = pf.codec
	e.fill.budget = e.pl.BurstFormat().PayloadBits()
	e.fill.gen = g
	pipeline.ForEach(e.cfg.Frame.Carriers, func(b int) {
		bs := &e.beams[b]
		bs.slot = 0
		bs.sent = bs.sent[:0]
		bs.cls = [switchfab.NumClasses]clsAccum{}
		for s := range g.grid[b] {
			g.grid[b][s] = nil
		}
		e.fab.Schedule(e.dlsched, b, e.cfg.Frame.Slots, bs.emit)
	})
	g.sent = g.sent[:0]
	for b := range e.beams {
		bs := &e.beams[b]
		g.sent = append(g.sent, bs.sent...)
		for c := range bs.cls {
			a := bs.cls[c]
			if a == (clsAccum{}) {
				continue
			}
			cls := &e.cls[c]
			cls.delivered += a.delivered
			cls.bits += a.bits
			cls.reencode += a.reencode
			cls.latSum += a.latSum
			if a.latMax > cls.latMax {
				cls.latMax = a.latMax
			}
			e.met.DeliveredPackets += a.delivered
			e.met.DeliveredBits += a.bits
			e.met.DroppedReencode += a.reencode
			e.latSum += a.latSum
			if a.latMax > e.met.LatencyMax {
				e.met.LatencyMax = a.latMax
			}
		}
	}
	if e.stages != nil {
		observeTimer(e.stages.Schedule, time.Since(t).Nanoseconds())
	}
}

// egress is the frame's second half-stage — wideband transmit of the
// filled grid generation and the optional ground verify. It reads only
// the framePrep, its egress generation, the transmitter's own buffers
// and the concurrency-safe demod pools, and writes nothing the control
// thread shares, so a PipelinedRunner may run it on a worker while the
// control thread ingests the next frame; the verify outcome comes back
// as a delta for the caller to fold (foldVerify) rather than racing the
// shared report.
func (e *Engine) egress(pf *framePrep) (egressDelta, error) {
	var t time.Time
	if e.stages != nil {
		t = time.Now()
	}
	wide, err := e.tx.TransmitFrameGrid(e.cfg.Frame, pf.gen.grid)
	if err != nil {
		return egressDelta{}, fmt.Errorf("traffic: frame %d downlink: %w", pf.f, err)
	}
	if e.stages != nil {
		now := time.Now()
		observeTimer(e.stages.Transmit, now.Sub(t).Nanoseconds())
		t = now
	}
	var d egressDelta
	if e.cfg.Verify {
		d = e.verify(wide, pf.codec, pf.gen)
		if e.stages != nil {
			observeTimer(e.stages.Verify, time.Since(t).Nanoseconds())
		}
	}
	dsp.PutVec(wide)
	return d, nil
}

// emitPacket is one beam's emit hook (preallocated per beamState at
// construction, so the per-frame fill path does not close over loop
// state): it places a scheduled packet into the beam's next transmit
// grid cell and accounts delivery and latency into the beam-owned
// accumulators, or discards a packet whose codeword no longer fits a
// burst after a codec swap (no slot used). Aggregate (popBeam) packets
// consume their downlink slot — real capacity spent on the untraced
// remainder — but synthesize no waveform: the grid cell stays idle, so
// DSP and ground-verify cost stays proportional to tracer traffic.
func (e *Engine) emitPacket(bs *beamState, p switchfab.Packet) bool {
	if e.fill.codec.EncodedLen(len(p.Bits)) > e.fill.budget {
		bs.cls[p.Class].reencode++
		return false
	}
	b, s := bs.beam, bs.slot
	lat := e.fill.frame - p.Ingress
	switch t := p.Term.(type) {
	case *termState:
		e.fill.gen.grid[b][s] = p.Bits
		bs.sent = append(bs.sent, sentCell{pkt: p, cell: modem.SlotAssignment{Carrier: b, Slot: s}})
		t.stat.DeliveredBits += len(p.Bits)
	case *popBeam:
		t.delivered++
		t.bits += len(p.Bits)
		t.latSum += lat
		if lat > t.latMax {
			t.latMax = lat
		}
	default:
		e.fill.gen.grid[b][s] = p.Bits
		bs.sent = append(bs.sent, sentCell{pkt: p, cell: modem.SlotAssignment{Carrier: b, Slot: s}})
	}
	bs.slot++

	cls := &bs.cls[p.Class]
	cls.delivered++
	cls.bits += len(p.Bits)
	cls.latSum += lat
	if lat > cls.latMax {
		cls.latMax = lat
	}
	return true
}

// verify demodulates the transmitted wideband block on a ground receiver
// (DDC bank plus burst demodulators) and compares every delivered packet
// bit for bit — the loopback contract of the regenerative loop. It runs
// inside egress (possibly on the pipeline worker), so it touches only
// the frame's generation and the egress-owned demux/demod pools and
// returns its counters as a delta instead of writing the shared report.
func (e *Engine) verify(wide dsp.Vec, codec fec.Codec, g *egressGen) egressDelta {
	split := e.gdemux.Process(wide)
	slotLen := e.cfg.Frame.SlotSymbols * e.cfg.Plan.Decim
	type outcome struct {
		lost    bool
		bitErrs int
	}
	outs := make([]outcome, len(g.sent))
	pipeline.ForEach(len(g.sent), func(i int) {
		sc := g.sent[i]
		base := split[sc.cell.Carrier]
		start := sc.cell.Slot * slotLen
		end := start + slotLen + 160 // slack for the DUC/DDC group delays
		if end > len(base) {
			end = len(base)
		}
		dem := e.gdems.Get().(*modem.BurstDemodulator)
		res := dem.Demodulate(base[start:end])
		e.gdems.Put(dem)
		if !res.Found {
			outs[i] = outcome{lost: true}
			return
		}
		bits := sc.pkt.Bits
		hard := modem.HardBits(res.Soft)
		dec := codec.Decode(fec.HardLLR(hard)[:codec.EncodedLen(len(bits))])
		outs[i] = outcome{bitErrs: fec.CountBitErrors(bits, dec[:len(bits)])}
	})
	var d egressDelta
	for _, o := range outs {
		if o.lost {
			d.lost++
		} else {
			d.bitErrs += o.bitErrs
		}
	}
	for _, v := range split {
		dsp.PutVec(v)
	}
	return d
}

// snapshotQueues folds the fabric-side accounting into a report
// snapshot: total tail drops, per-beam high-water marks, and the
// per-class reduction of queue and delivery stats.
func (e *Engine) snapshotQueues(r *Report) {
	cc := e.fab.ClassCounters()
	dropped := 0
	r.PerClass = make([]ClassStats, switchfab.NumClasses)
	for c := 0; c < switchfab.NumClasses; c++ {
		a := e.cls[c]
		dropped += cc[c].Dropped
		cs := ClassStats{
			Class:            switchfab.Class(c).String(),
			RoutedPackets:    cc[c].Routed,
			DroppedQueue:     cc[c].Dropped,
			DroppedReencode:  a.reencode,
			DeliveredPackets: a.delivered,
			DeliveredBits:    a.bits,
			HighWater:        cc[c].HighWater,
			LatencySum:       a.latSum,
			LatencyMax:       a.latMax,
		}
		if a.delivered > 0 {
			cs.LatencyMean = float64(a.latSum) / float64(a.delivered)
		}
		r.PerClass[c] = cs
	}
	r.DroppedQueue = dropped
	r.QueueHighWater = make([]int, e.cfg.Frame.Carriers)
	for b := range r.QueueHighWater {
		r.QueueHighWater[b] = e.fab.HighWater(b)
	}
}

// snapshotPops reduces the per-(population, beam) block accounting to
// one PopulationStats row per population: the request-side counters
// accumulated in dama plus the routing/delivery counters the per-beam
// tasks own, merged in beam order. Rows cover the aggregate remainder
// only; tracer terminals report individually in PerTerminal.
func (e *Engine) snapshotPops(r *Report) {
	if len(e.pops) == 0 {
		return
	}
	r.PerPopulation = make([]PopulationStats, len(e.pops))
	for i, ps := range e.pops {
		st := ps.stat
		for j := range ps.beams {
			pb := &ps.beams[j]
			st.RoutedPackets += pb.routed
			st.DroppedQueue += pb.dropped
			st.DeliveredPackets += pb.delivered
			st.DeliveredBits += pb.bits
			st.LatencySum += pb.latSum
			if pb.latMax > st.LatencyMax {
				st.LatencyMax = pb.latMax
			}
		}
		if st.DeliveredPackets > 0 {
			st.LatencyMean = float64(st.LatencySum) / float64(st.DeliveredPackets)
		}
		r.PerPopulation[i] = st
	}
}

// Metrics returns a snapshot of the raw run counters — cheap enough to
// take every frame (no per-terminal reduction), which is how the
// scenario runtime computes per-frame deltas for its observers.
func (e *Engine) Metrics() Report {
	r := e.met
	r.LatencySum = e.latSum
	e.snapshotQueues(&r)
	e.snapshotPops(&r)
	return r
}

// Report snapshots the run metrics, including the per-terminal
// reduction. Departed terminals keep their row (in join order).
func (e *Engine) Report() *Report {
	r := e.met
	r.Verified = e.cfg.Verify
	r.WallSeconds = e.wall.Seconds()
	r.ModelSeconds = float64(e.met.Frames) * FrameSeconds(e.cfg.Frame)
	r.LatencySum = e.latSum
	if r.DeliveredPackets > 0 {
		r.LatencyMean = float64(e.latSum) / float64(r.DeliveredPackets)
	}
	e.snapshotQueues(&r)
	e.snapshotPops(&r)
	r.PerTerminal = make([]TerminalStats, len(e.terms))
	for i, tsrc := range e.terms {
		st := tsrc.stat
		sa := tsrc.sync
		st.SyncBursts = sa.bursts
		if sa.bursts > 0 {
			st.MeanAbsCFO = sa.freqAbsSum / float64(sa.bursts)
			st.MaxAbsCFO = sa.freqAbsMax
			st.MinUWMetric = sa.uwMin
		}
		r.PerTerminal[i] = st
	}
	return &r
}
