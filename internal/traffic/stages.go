package traffic

import "repro/internal/telemetry"

// StageTimers carries the engine's per-stage frame timers — the
// software mirror of the paper's per-pipeline-stage FPGA
// instrumentation. Each timer records one observation per frame (in
// nanoseconds) for its stage of the closed loop:
//
//	Synthesis — DAMA grant + terminal-side encode/modulate/channel
//	Receive   — payload receive pipeline + switch routing
//	Schedule  — downlink scheduler fill of the transmit grid
//	Transmit  — wideband DUC/MUX/DAC transmit
//	Verify    — ground demodulation check (only when Config.Verify)
//
// Individual timers may be nil; the engine skips them. An engine with
// no StageTimers attached takes no timestamps at all, so the untimed
// hot path is byte-for-byte the pre-telemetry one.
type StageTimers struct {
	Synthesis *telemetry.Timer
	Receive   *telemetry.Timer
	Schedule  *telemetry.Timer
	Transmit  *telemetry.Timer
	Verify    *telemetry.Timer
}

// NewStageTimers registers the engine stage timer set on reg under the
// engine.stage.* keys.
func NewStageTimers(reg *telemetry.Registry) *StageTimers {
	return &StageTimers{
		Synthesis: reg.Timer("engine.stage.synthesis_ns"),
		Receive:   reg.Timer("engine.stage.receive_ns"),
		Schedule:  reg.Timer("engine.stage.schedule_ns"),
		Transmit:  reg.Timer("engine.stage.transmit_ns"),
		Verify:    reg.Timer("engine.stage.verify_ns"),
	}
}

// SetStageTimers attaches (or, with nil, detaches) the per-stage frame
// timers at a frame boundary. The record path is allocation-free:
// timing adds two monotonic clock reads per stage and one bounded
// sample append per timer, nothing else.
func (e *Engine) SetStageTimers(st *StageTimers) { e.stages = st }

// StageTimers returns the attached per-stage timers (nil when untimed).
func (e *Engine) StageTimers() *StageTimers { return e.stages }

// observe records v into t when both the stage set and the timer are
// present.
func (t *StageTimers) observe(tm *telemetry.Timer, ns int64) {
	if tm != nil {
		tm.Observe(float64(ns))
	}
}
