package traffic

import "repro/internal/telemetry"

// StageTimers carries the engine's per-stage frame timers — the
// software mirror of the paper's per-pipeline-stage FPGA
// instrumentation. Each timer records one observation per frame (in
// nanoseconds) for its stage of the closed loop:
//
//	Synthesis — DAMA grant + terminal-side encode/modulate/channel
//	Receive   — payload receive pipeline + switch routing
//	Schedule  — downlink scheduler fill of the transmit grid
//	Transmit  — wideband DUC/MUX/DAC transmit
//	Verify    — ground demodulation check (only when Config.Verify)
//
// Individual timers may be nil; the engine skips them. An engine with
// no StageTimers attached takes no timestamps at all, so the untimed
// hot path is byte-for-byte the pre-telemetry one.
type StageTimers struct {
	Synthesis *telemetry.Timer
	Receive   *telemetry.Timer
	Schedule  *telemetry.Timer
	Transmit  *telemetry.Timer
	Verify    *telemetry.Timer
}

// NewStageTimers registers the engine stage timer set on reg under the
// engine.stage.* keys.
func NewStageTimers(reg *telemetry.Registry) *StageTimers {
	return &StageTimers{
		Synthesis: reg.Timer("engine.stage.synthesis_ns"),
		Receive:   reg.Timer("engine.stage.receive_ns"),
		Schedule:  reg.Timer("engine.stage.schedule_ns"),
		Transmit:  reg.Timer("engine.stage.transmit_ns"),
		Verify:    reg.Timer("engine.stage.verify_ns"),
	}
}

// SetStageTimers attaches (or, with nil, detaches) the per-stage frame
// timers at a frame boundary. The record path is allocation-free:
// timing adds two monotonic clock reads per stage and one bounded
// sample append per timer, nothing else.
func (e *Engine) SetStageTimers(st *StageTimers) { e.stages = st }

// StageTimers returns the attached per-stage timers (nil when untimed).
func (e *Engine) StageTimers() *StageTimers { return e.stages }

// observeTimer records ns into tm when the timer is present — the
// nil-tolerant record helper shared by the engine's stage and pipeline
// instrumentation. (A StageTimers set may carry nil entries for stages
// a caller does not watch; previously this was a StageTimers method
// that never used its receiver.)
func observeTimer(tm *telemetry.Timer, ns int64) {
	if tm != nil {
		tm.Observe(float64(ns))
	}
}

// PipelineTimers carries the cross-frame pipeline occupancy timers a
// PipelinedRunner records once per joined frame (in nanoseconds):
//
//	Overlap — the part of a frame's egress that ran concurrently with
//	          the next frame's ingest+fill (hidden latency)
//	Stall   — the time the control thread blocked at the join waiting
//	          for the in-flight egress to finish (exposed latency)
//
// A frame whose egress finishes before the next frame's control-thread
// work does records stall ≈ 0 and overlap ≈ the whole egress; a frame
// that leaves the control thread waiting records the remainder as
// stall. Either timer may be nil and is skipped.
type PipelineTimers struct {
	Overlap *telemetry.Timer
	Stall   *telemetry.Timer
}

// NewPipelineTimers registers the pipeline occupancy timer pair on reg
// under the engine.pipeline.* keys.
func NewPipelineTimers(reg *telemetry.Registry) *PipelineTimers {
	return &PipelineTimers{
		Overlap: reg.Timer("engine.pipeline.overlap_ns"),
		Stall:   reg.Timer("engine.pipeline.stall_ns"),
	}
}
