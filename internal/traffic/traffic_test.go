package traffic

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dsp"
	"repro/internal/frontend"
	"repro/internal/modem"
	"repro/internal/payload"
)

// smallFrame keeps the per-test work down: 2 carriers x 2 slots, slots
// just big enough for the default 248-symbol burst plus flush.
func smallFrame(carriers, slots int) modem.FrameConfig {
	return modem.FrameConfig{Carriers: carriers, Slots: slots, SlotSymbols: 320, GuardSymbols: 16}
}

func bootPayload(t testing.TB, carriers int, codecName string) *payload.Payload {
	t.Helper()
	cfg := payload.DefaultConfig()
	cfg.Carriers = carriers
	pl, err := payload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.SetWaveform(payload.ModeTDMA); err != nil {
		t.Fatal(err)
	}
	if err := pl.SetCodec(codecName); err != nil {
		t.Fatal(err)
	}
	return pl
}

func newEngine(t testing.TB, cfg Config, terminals []Terminal, codecName string) *Engine {
	t.Helper()
	pl := bootPayload(t, cfg.Frame.Carriers, codecName)
	e, err := New(pl, cfg, terminals)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestModels(t *testing.T) {
	cbr := CBR{Cells: 3}
	for f := 0; f < 5; f++ {
		if cbr.Demand(f) != 3 {
			t.Fatal("CBR must be constant")
		}
	}
	oo := OnOff{On: 2, Off: 3, Cells: 4}
	var got []int
	for f := 0; f < 10; f++ {
		got = append(got, oo.Demand(f))
	}
	want := []int{4, 4, 0, 0, 0, 4, 4, 0, 0, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("OnOff demand %v, want %v", got, want)
	}
	hs := Hotspot{Base: 1, Surge: 6, Period: 4, Width: 1}
	got = got[:0]
	for f := 0; f < 8; f++ {
		got = append(got, hs.Demand(f))
	}
	want = []int{6, 1, 1, 1, 6, 1, 1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Hotspot demand %v, want %v", got, want)
	}
}

func TestInfoBitsFor(t *testing.T) {
	pl := bootPayload(t, 1, "conv-r1/2-k9")
	codec, err := pl.Codec()
	if err != nil {
		t.Fatal(err)
	}
	budget := pl.BurstFormat().PayloadBits()
	k := InfoBitsFor(codec, budget)
	if codec.EncodedLen(k) > budget {
		t.Fatalf("k=%d does not fit the %d-bit budget", k, budget)
	}
	if codec.EncodedLen(k+8) <= budget {
		t.Fatalf("k=%d is not maximal", k)
	}
}

func TestEngineValidation(t *testing.T) {
	pl := bootPayload(t, 2, "uncoded")
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	ok := []Terminal{{ID: "t0", Beam: 0, Model: CBR{Cells: 1}}}
	cases := []struct {
		name  string
		cfg   Config
		terms []Terminal
	}{
		{"no terminals", cfg, nil},
		{"bad beam", cfg, []Terminal{{ID: "t0", Beam: 2, Model: CBR{Cells: 1}}}},
		{"dup id", cfg, []Terminal{{ID: "t0", Beam: 0, Model: CBR{Cells: 1}}, {ID: "t0", Beam: 1, Model: CBR{Cells: 1}}}},
		{"nil model", cfg, []Terminal{{ID: "t0", Beam: 0}}},
	}
	for _, tc := range cases {
		if _, err := New(pl, tc.cfg, tc.terms); err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
	}
	bad := cfg
	bad.QueueDepth = 0
	if _, err := New(pl, bad, ok); err == nil {
		t.Fatal("queue depth 0: no error")
	}
	bad = cfg
	bad.Frame.Carriers = 3 // exceeds the 2-carrier payload
	if _, err := New(pl, bad, ok); err == nil {
		t.Fatal("carrier overflow: no error")
	}
	if _, err := New(pl, cfg, ok); err != nil {
		t.Fatalf("valid engine rejected: %v", err)
	}
}

// The closed loop at high SNR must deliver every queued bit unchanged:
// uplink decode exact, downlink ground demodulation exact, no drops.
func TestEngineClosedLoopBitExact(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	cfg.Verify = true
	cfg.EbN0dB = 9
	cfg.Seed = 7
	terms := []Terminal{
		{ID: "t0", Beam: 0, Model: CBR{Cells: 1}},
		{ID: "t1", Beam: 1, Model: CBR{Cells: 1}},
	}
	e := newEngine(t, cfg, terms, "conv-r1/2-k9")
	if err := e.RunFrames(8); err != nil {
		t.Fatal(err)
	}
	r := e.Report()
	if r.UplinkFailures != 0 || r.UplinkBitErrs != 0 {
		t.Fatalf("uplink not clean: %d failures, %d bit errors", r.UplinkFailures, r.UplinkBitErrs)
	}
	if r.DownlinkLost != 0 || r.DownlinkBitErrs != 0 {
		t.Fatalf("downlink not clean: %d lost, %d bit errors", r.DownlinkLost, r.DownlinkBitErrs)
	}
	if r.DroppedQueue != 0 || r.DroppedReencode != 0 {
		t.Fatalf("unexpected drops: %d queue, %d re-encode", r.DroppedQueue, r.DroppedReencode)
	}
	// 2 cells granted per frame, all delivered (the last frame's uplink
	// packets are still queued when the run stops).
	if r.GrantedCells != 16 {
		t.Fatalf("granted %d cells, want 16", r.GrantedCells)
	}
	if r.DeliveredPackets == 0 || r.DeliveredBits == 0 {
		t.Fatal("nothing delivered")
	}
	if r.LatencyMax > 1 {
		t.Fatalf("latency %d frames on an unloaded loop", r.LatencyMax)
	}
	for _, ts := range r.PerTerminal {
		if ts.DeliveredBits == 0 {
			t.Fatalf("terminal %s starved", ts.ID)
		}
	}
}

// The closed loop must survive per-terminal channel impairments across
// the documented acquisition range: CFO up to ±1/10 cycle/symbol,
// fractional timing offsets in [0, 1), phase offsets across (−π, π] and
// gain imbalance, at Eb/N0 >= 6 dB — zero info-bit errors end to end.
func TestEngineImpairedClosedLoopBitExact(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	cfg.Verify = true
	cfg.EbN0dB = 6
	cfg.Seed = 9
	terms := []Terminal{
		{ID: "t0", Beam: 0, Model: CBR{Cells: 1},
			Channel: &ChannelProfile{CFO: 0.1, Phase: math.Pi, Timing: 0.5, Gain: 0.9}},
		{ID: "t1", Beam: 1, Model: CBR{Cells: 1},
			Channel: &ChannelProfile{CFO: -0.1, Phase: -3.0, Timing: 0.9, Gain: 1.1}},
		{ID: "t2", Beam: 0, Model: CBR{Cells: 1},
			Channel: &ChannelProfile{CFO: 0.05, Drift: 0.002, Phase: 1.3, Timing: 0.25}},
	}
	e := newEngine(t, cfg, terms, "conv-r1/2-k9")
	if e.pl.SyncConfig() == (modem.SyncConfig{}) {
		t.Fatal("impaired population must enable the sync chain")
	}
	if err := e.RunFrames(10); err != nil {
		t.Fatal(err)
	}
	r := e.Report()
	if r.UplinkFailures != 0 || r.UplinkBitErrs != 0 {
		t.Fatalf("uplink not clean under impairments: %d failures, %d bit errors", r.UplinkFailures, r.UplinkBitErrs)
	}
	if r.DownlinkLost != 0 || r.DownlinkBitErrs != 0 {
		t.Fatalf("downlink not clean: %d lost, %d bit errors", r.DownlinkLost, r.DownlinkBitErrs)
	}
	// The sync stats must reflect the injected CFOs; the drifting
	// terminal's expectation averages its Doppler ramp over the run.
	for i, ts := range r.PerTerminal {
		prof := terms[i].Channel
		want := 0.0
		for f := 0; f < 10; f++ {
			want += math.Abs(prof.CFO + prof.Drift*float64(f))
		}
		want /= 10
		if ts.SyncBursts == 0 {
			t.Fatalf("terminal %s has no sync stats", ts.ID)
		}
		if math.Abs(ts.MeanAbsCFO-want) > 0.01 {
			t.Fatalf("terminal %s mean |CFO| estimate %.4f, injected %.4f", ts.ID, ts.MeanAbsCFO, want)
		}
	}
}

// A clean population must keep the payload on the legacy UW-phase-only
// chain — the frequency estimator stays dead code, every receipt reports
// a zero CFO estimate, and the run is bit-identical to engines predating
// channel profiles (same demod math, same channel synthesis path).
func TestEngineCleanChannelSyncInert(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	cfg.Verify = true
	cfg.EbN0dB = 8
	cfg.Seed = 3
	terms := []Terminal{
		{ID: "a", Beam: 0, Model: CBR{Cells: 1}},
		{ID: "b", Beam: 1, Model: CBR{Cells: 1}},
	}
	e := newEngine(t, cfg, terms, "conv-r1/2-k9")
	if e.pl.SyncConfig() != (modem.SyncConfig{}) {
		t.Fatal("clean population must keep the boot sync config")
	}
	if err := e.RunFrames(6); err != nil {
		t.Fatal(err)
	}
	for _, ts := range e.Report().PerTerminal {
		if ts.MeanAbsCFO != 0 || ts.MaxAbsCFO != 0 {
			t.Fatalf("terminal %s reports CFO estimates on a clean channel: %+v", ts.ID, ts)
		}
		if ts.SyncBursts == 0 || ts.MinUWMetric <= modem.DefaultUWThreshold {
			t.Fatalf("terminal %s sync stats implausible: %+v", ts.ID, ts)
		}
	}
}

// One engine's auto-enabled sync chain must not leak into the next
// engine sharing the payload: an impaired run flips the payload onto
// the full chain, and a subsequent clean-population engine restores the
// legacy chain — while an explicit SetSyncConfig survives both.
func TestSyncConfigDoesNotLeakAcrossEngines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	pl := bootPayload(t, 2, "conv-r1/2-k9")
	impaired := []Terminal{{ID: "a", Beam: 0, Model: CBR{Cells: 1},
		Channel: &ChannelProfile{CFO: 0.05, Phase: 1.0}}}
	clean := []Terminal{{ID: "a", Beam: 0, Model: CBR{Cells: 1}}}

	if _, err := New(pl, cfg, impaired); err != nil {
		t.Fatal(err)
	}
	if pl.SyncConfig() == (modem.SyncConfig{}) || !pl.SyncConfigAuto() {
		t.Fatal("impaired engine must auto-enable the sync chain")
	}
	if _, err := New(pl, cfg, clean); err != nil {
		t.Fatal(err)
	}
	if pl.SyncConfig() != (modem.SyncConfig{}) {
		t.Fatalf("clean engine kept the previous engine's sync chain: %+v", pl.SyncConfig())
	}

	explicit := modem.SyncConfig{UWThreshold: 0.8, FreqRecovery: true}
	pl.SetSyncConfig(explicit)
	if _, err := New(pl, cfg, impaired); err != nil {
		t.Fatal(err)
	}
	if pl.SyncConfig() != explicit {
		t.Fatal("impaired engine overrode an explicit sync config")
	}
	if _, err := New(pl, cfg, clean); err != nil {
		t.Fatal(err)
	}
	if pl.SyncConfig() != explicit {
		t.Fatal("clean engine overrode an explicit sync config")
	}

	// An explicit zero config pins the legacy chain on purpose — it
	// must be just as sticky as any other explicit value.
	pl.SetSyncConfig(modem.SyncConfig{})
	if _, err := New(pl, cfg, impaired); err != nil {
		t.Fatal(err)
	}
	if pl.SyncConfig() != (modem.SyncConfig{}) || pl.SyncConfigAuto() {
		t.Fatalf("impaired engine overrode an explicitly pinned legacy chain: %+v", pl.SyncConfig())
	}
}

// An all-idle downlink frame is legal silence: the channel must not
// substitute full-power noise for it (the old p==1 fallback), and a
// ground receiver scanning every (carrier, slot) cell must not declare
// a single burst.
func TestAllIdleFrameNoSpuriousBursts(t *testing.T) {
	pl := bootPayload(t, 2, "uncoded")
	fcfg := smallFrame(2, 2)
	plan := DefaultPlan(fcfg.Carriers)
	tx := payload.NewTransmitter(pl, plan)
	grid := make([][][]byte, fcfg.Carriers)
	for c := range grid {
		grid[c] = make([][]byte, fcfg.Slots)
	}
	wide, err := tx.TransmitFrameGrid(fcfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	// The space-ground channel still runs at a finite Es/N0; silence in
	// must stay silence out.
	ch := dsp.NewChannelWith(5, 10, plan.Decim)
	rx := ch.Apply(wide)
	for _, v := range rx {
		if v != 0 {
			t.Fatal("silent frame picked up noise from the zero-power fallback")
		}
	}
	demux := frontend.NewDemux(plan, 95)
	split := demux.Process(rx)
	dem := modem.NewBurstDemodulator(pl.BurstFormat(), 0.35, plan.Decim, 10, modem.TimingOerderMeyr)
	slotLen := fcfg.SlotSymbols * plan.Decim
	for c := 0; c < fcfg.Carriers; c++ {
		for s := 0; s < fcfg.Slots; s++ {
			end := (s + 1) * slotLen
			if end > len(split[c]) {
				end = len(split[c])
			}
			res := dem.Demodulate(split[c][s*slotLen : end])
			if res.Found {
				t.Fatalf("spurious burst detected at carrier %d slot %d (uw %.2f)", c, s, res.UWMetric)
			}
		}
	}
}

// Two engines with identical configuration and seed must agree on every
// metric — the deterministic-run contract.
func TestEngineDeterministic(t *testing.T) {
	mk := func() *Report {
		cfg := DefaultConfig()
		cfg.Frame = smallFrame(2, 2)
		cfg.Verify = true
		cfg.EbN0dB = 8
		cfg.Seed = 3
		terms := []Terminal{
			{ID: "a", Beam: 0, Model: CBR{Cells: 1}},
			{ID: "b", Beam: 1, Model: OnOff{On: 2, Off: 1, Cells: 2}},
			{ID: "c", Beam: 1, Model: Hotspot{Base: 0, Surge: 2, Period: 3, Width: 1}},
		}
		e := newEngine(t, cfg, terms, "conv-r1/2-k9")
		if err := e.RunFrames(6); err != nil {
			t.Fatal(err)
		}
		r := e.Report()
		r.WallSeconds = 0 // the only non-deterministic field
		return r
	}
	if a, b := mk(), mk(); !reflect.DeepEqual(a, b) {
		t.Fatalf("runs diverged:\n%v\nvs\n%v", a, b)
	}
}

// A beam offered more than its downlink can carry must fill its bounded
// queue to the high-water mark and then drop, never grow past the bound.
func TestEngineQueueBoundAndDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	cfg.QueueDepth = 3
	cfg.Seed = 5
	// Both terminals target beam 0: 4 cells/frame in, 2 slots/frame out.
	terms := []Terminal{
		{ID: "t0", Beam: 0, Model: CBR{Cells: 2}},
		{ID: "t1", Beam: 0, Model: CBR{Cells: 2}},
	}
	e := newEngine(t, cfg, terms, "uncoded")
	if err := e.RunFrames(10); err != nil {
		t.Fatal(err)
	}
	r := e.Report()
	if r.QueueHighWater[0] != cfg.QueueDepth {
		t.Fatalf("beam 0 high water %d, want %d", r.QueueHighWater[0], cfg.QueueDepth)
	}
	if r.DroppedQueue == 0 {
		t.Fatal("overloaded beam dropped nothing")
	}
	if e.QueueDepth(0) > cfg.QueueDepth {
		t.Fatalf("queue grew past the bound: %d", e.QueueDepth(0))
	}
	if r.QueueHighWater[1] != 0 {
		t.Fatalf("idle beam 1 has high water %d", r.QueueHighWater[1])
	}
}

// Backpressure throttles the same overload at the source instead of
// dropping in the sky.
func TestEngineBackpressureThrottles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	cfg.QueueDepth = 3
	cfg.Policy = Backpressure
	cfg.Seed = 5
	terms := []Terminal{
		{ID: "t0", Beam: 0, Model: CBR{Cells: 2}},
		{ID: "t1", Beam: 0, Model: CBR{Cells: 2}},
	}
	e := newEngine(t, cfg, terms, "uncoded")
	if err := e.RunFrames(10); err != nil {
		t.Fatal(err)
	}
	r := e.Report()
	if r.ThrottledCells == 0 {
		t.Fatal("backpressure never throttled an overloaded beam")
	}
	if r.DroppedQueue != 0 {
		t.Fatalf("admission control still dropped %d packets in the sky", r.DroppedQueue)
	}
	if e.QueueDepth(0) > cfg.QueueDepth {
		t.Fatalf("queue grew past the bound: %d", e.QueueDepth(0))
	}
}

// Frames served while the coding function is down are outages: traffic
// pauses, nothing is lost from the queues, and service resumes.
func TestEngineOutageAndRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	cfg.Seed = 11
	terms := []Terminal{{ID: "t0", Beam: 0, Model: CBR{Cells: 1}}}
	pl := bootPayload(t, 2, "uncoded")
	e, err := New(pl, cfg, terms)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunFrames(2); err != nil {
		t.Fatal(err)
	}
	queued := e.QueueDepth(0)

	var dev string
	for _, d := range pl.Chipset().DevicesFor(payload.FuncCoding) {
		dev = d
	}
	d, _ := pl.Chipset().Device(dev)
	d.PowerOff()
	if err := e.RunFrames(3); err != nil {
		t.Fatal(err)
	}
	if got := e.Report().OutageFrames; got != 3 {
		t.Fatalf("%d outage frames, want 3", got)
	}
	if e.QueueDepth(0) != queued {
		t.Fatalf("queue changed during the outage: %d -> %d", queued, e.QueueDepth(0))
	}
	d.PowerOn()
	if err := e.RunFrames(2); err != nil {
		t.Fatal(err)
	}
	r := e.Report()
	if r.OutageFrames != 3 {
		t.Fatalf("outage frames kept counting: %d", r.OutageFrames)
	}
	if r.DeliveredPackets == 0 {
		t.Fatal("no delivery after recovery")
	}
}
