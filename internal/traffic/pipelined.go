package traffic

import (
	"errors"
	"time"
)

// PipelinedRunner steps an Engine with frame N's egress (wideband
// transmit + ground verify) overlapping frame N+1's ingest (DAMA, burst
// synthesis, payload receive, fabric routing) — the software mirror of
// the paper's per-stage FPGA parallelism, lifted to the frame level.
//
// One worker goroutine owns the in-flight egress; the caller's
// goroutine (the control thread) owns everything else. Step runs the
// frame prologue, ingest and scheduler fill concurrently with the
// previous frame's egress, joins that egress, then dispatches this
// frame's. The fill can overlap the previous egress because the two
// touch disjoint frame generations (egressGen double-buffering by frame
// parity); it cannot move past the join into the worker, because the
// next frame's backpressure admission reads the post-fill queue depths.
//
// Determinism is part of the contract, not an option: every fabric and
// report mutation stays on the control thread in sequential order,
// egress reads only its parity-selected generation and returns its
// verify outcome as a delta folded at the join, so a pipelined run is
// bit-identical to sequential stepping — reports, telemetry counters
// and ground-verify bits (DESIGN §12 gives the ownership argument).
// The one visible scheduling artifact: mid-run Metrics snapshots may
// lag the two verify counters by the single in-flight frame until the
// runner drains; end-of-run reports are taken after a drain and exact.
//
// The runner owns the engine's stepping while in use: advance the
// engine only through Step, and Drain before mutating it out-of-band
// (AddTerminal, queue or scheduler reconfiguration, control-plane
// swaps) or snapshotting state the in-flight egress still owes. The
// scenario session does both automatically, falling back to sequential
// stepping for frames that carry scripted events.
type PipelinedRunner struct {
	e      *Engine
	jobs   chan framePrep
	outs   chan egressOutcome
	timers *PipelineTimers

	inflight   bool
	closed     bool
	err        error // sticky: a failed egress poisons the run
	dispatched int
}

// egressOutcome is what the worker hands back at the join: the verify
// delta to fold, the egress wall time (for the overlap/stall split) and
// the transmit error, if any.
type egressOutcome struct {
	d   egressDelta
	dur time.Duration
	err error
}

// NewPipelinedRunner wraps e in a cross-frame pipeline and starts its
// egress worker. The caller must Close the runner when done with it —
// otherwise the parked worker goroutine outlives the run.
func NewPipelinedRunner(e *Engine) *PipelinedRunner {
	r := &PipelinedRunner{
		e:    e,
		jobs: make(chan framePrep),
		outs: make(chan egressOutcome),
	}
	go r.worker()
	return r
}

// Engine returns the wrapped engine. Read-only accessors are safe at
// any time; Drain first before mutating it or reading a report that
// must include the in-flight frame's verify counters.
func (r *PipelinedRunner) Engine() *Engine { return r.e }

// SetTimers attaches (or with nil detaches) the pipeline occupancy
// timers. Attach between frames, before the next Step.
func (r *PipelinedRunner) SetTimers(t *PipelineTimers) { r.timers = t }

// PipelinedFrames returns how many frames' egress was dispatched to the
// worker so far (outage frames and post-Close sequential steps are not).
func (r *PipelinedRunner) PipelinedFrames() int { return r.dispatched }

func (r *PipelinedRunner) worker() {
	for pf := range r.jobs {
		start := time.Now()
		d, err := r.e.egress(&pf)
		r.outs <- egressOutcome{d: d, dur: time.Since(start), err: err}
	}
}

// Step advances the closed loop by one frame, overlapping this frame's
// control-thread half (prologue, ingest, fill) with the previous
// frame's in-flight egress. After Close, Step degrades to plain
// sequential engine stepping; after an error, the error is sticky.
func (r *PipelinedRunner) Step() error {
	if r.err != nil {
		return r.err
	}
	if r.closed {
		return r.e.Step()
	}
	start := time.Now()
	pf, ok := r.e.beginFrame()
	if !ok {
		// Outage frame: no stage runs and there is nothing to dispatch;
		// a previous frame's egress, if any, stays in flight.
		r.e.wall += time.Since(start)
		return nil
	}
	if err := r.e.ingest(&pf); err != nil {
		r.err = errors.Join(err, r.join())
		return r.err
	}
	r.e.fillFrame(&pf)
	if err := r.join(); err != nil {
		r.err = err
		return err
	}
	r.jobs <- pf
	r.inflight = true
	r.dispatched++
	r.e.wall += time.Since(start)
	return nil
}

// join blocks until the in-flight egress (if any) finishes, folds its
// deferred verify counters into the report, and records the occupancy
// timers: stall is the time spent blocked here, overlap is the rest of
// the egress duration — the part that ran under this frame's
// control-thread work.
func (r *PipelinedRunner) join() error {
	if !r.inflight {
		return nil
	}
	start := time.Now()
	out := <-r.outs
	r.inflight = false
	stall := time.Since(start)
	r.e.foldVerify(out.d)
	r.e.wall += stall
	if r.timers != nil {
		observeTimer(r.timers.Stall, stall.Nanoseconds())
		overlap := out.dur - stall
		if overlap < 0 {
			overlap = 0
		}
		observeTimer(r.timers.Overlap, overlap.Nanoseconds())
	}
	return out.err
}

// Drain joins any in-flight egress and leaves the runner idle but
// usable: the engine is then fully caught up (verify counters included)
// and safe to mutate or snapshot; stepping may resume afterwards.
func (r *PipelinedRunner) Drain() error {
	if r.err != nil {
		return r.err
	}
	if err := r.join(); err != nil {
		r.err = err
		return err
	}
	return nil
}

// Close drains the pipeline and stops the worker goroutine. Close is
// idempotent, and the runner stays usable afterwards — Step simply
// falls back to sequential engine stepping.
func (r *PipelinedRunner) Close() error {
	err := r.Drain()
	if !r.closed {
		r.closed = true
		close(r.jobs)
	}
	return err
}
