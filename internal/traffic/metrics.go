package traffic

import (
	"fmt"
	"strings"

	"repro/internal/modem"
	"repro/internal/switchfab"
)

// TerminalStats is the per-terminal slice of the run metrics. The JSON
// tags are the -report-json schema campaign tooling consumes; field
// names are frozen there.
type TerminalStats struct {
	ID            string `json:"id"`
	Model         string `json:"model"`
	OfferedCells  int    `json:"offered_cells"`
	GrantedCells  int    `json:"granted_cells"`
	UplinkBits    int    `json:"uplink_bits"`    // info bits decoded on the uplink
	DeliveredBits int    `json:"delivered_bits"` // info bits transmitted on the downlink

	// Burst synchronization stats from the payload's receive chain,
	// aggregated over the terminal's uplink bursts. CFO figures are the
	// feedforward frequency estimates in cycles/symbol; they stay zero
	// when the legacy (clean-channel) sync chain is active.
	SyncBursts  int     `json:"sync_bursts"`             // bursts contributing to the sync stats
	MeanAbsCFO  float64 `json:"mean_abs_cfo,omitempty"`  // mean |CFO estimate| (cycles/symbol)
	MaxAbsCFO   float64 `json:"max_abs_cfo,omitempty"`   // max |CFO estimate| (cycles/symbol)
	MinUWMetric float64 `json:"min_uw_metric,omitempty"` // worst unique-word correlation seen
}

// PopulationStats is the per-population slice of the run metrics under
// the two-tier model: the aggregate remainder of one Population (the
// untraced members), request-side admission counters through routing
// and delivery. Tracer terminals report individually in PerTerminal and
// are not double-counted here; Members/Tracers record the split.
type PopulationStats struct {
	Name    string `json:"name"`
	Model   string `json:"model"`
	Class   string `json:"class"`
	Members int    `json:"members"` // total modeled members (Population.Count)
	Tracers int    `json:"tracers"` // members modeled as full terminals

	OfferedCells   int `json:"offered_cells"`
	GrantedCells   int `json:"granted_cells"`
	DeniedCells    int `json:"denied_cells"`
	ThrottledCells int `json:"throttled_cells"`
	UplinkBits     int `json:"uplink_bits"` // info bits of granted aggregate cells

	RoutedPackets    int `json:"routed_packets"`
	DroppedQueue     int `json:"dropped_queue"`
	DeliveredPackets int `json:"delivered_packets"`
	DeliveredBits    int `json:"delivered_bits"`

	LatencySum  int     `json:"latency_sum"`
	LatencyMean float64 `json:"latency_mean"`
	LatencyMax  int     `json:"latency_max"`
}

// ClassStats is the per-traffic-class slice of the run metrics: the
// switching fabric's queue accounting (packets routed, tail drops,
// per-class queue high-water) merged with the engine's delivery
// accounting (packets/bits onto the downlink, re-encode drops, latency)
// for one class. Report.PerClass carries one row per class, indexed by
// the switchfab class value (BE, AF, EF), so single-class runs read
// their familiar totals from the BE row.
type ClassStats struct {
	Class            string  `json:"class"`            // spec-level class name ("be", "af", "ef")
	RoutedPackets    int     `json:"routed_packets"`   // packets the fabric enqueued
	DroppedQueue     int     `json:"dropped_queue"`    // packets tail-dropped by a full class queue
	DroppedReencode  int     `json:"dropped_reencode"` // scheduled packets whose codeword no longer fits a burst
	DeliveredPackets int     `json:"delivered_packets"`
	DeliveredBits    int     `json:"delivered_bits"`
	HighWater        int     `json:"high_water"`  // peak occupancy of any single beam's queue of this class
	LatencySum       int     `json:"latency_sum"` // frames, summed over delivered packets
	LatencyMean      float64 `json:"latency_mean"`
	LatencyMax       int     `json:"latency_max"`
}

// Report is the metrics layer of one engine run. Model-time figures use
// the MF-TDMA frame duration at the paper's TDMA symbol rate; wall-time
// figures measure the software pipeline itself.
type Report struct {
	Frames       int `json:"frames"`
	OutageFrames int `json:"outage_frames"` // frames skipped because no codec was loaded mid-reconfiguration

	// Capacity requests.
	OfferedCells   int `json:"offered_cells"`   // cells requested by the population
	GrantedCells   int `json:"granted_cells"`   // cells allocated by the scheduler
	DeniedCells    int `json:"denied_cells"`    // requests clipped by a full frame
	ThrottledCells int `json:"throttled_cells"` // requests suppressed by downlink backpressure

	// Regenerative loop.
	UplinkBursts   int `json:"uplink_bursts"`   // bursts pushed through DEMOD/DECOD
	UplinkFailures int `json:"uplink_failures"` // bursts lost on the uplink (not found / service down)
	UplinkBitErrs  int `json:"uplink_bit_errs"` // info-bit errors on decoded uplink bursts

	// Downlink queues.
	DeliveredPackets int   `json:"delivered_packets"`
	DeliveredBits    int   `json:"delivered_bits"`
	DroppedQueue     int   `json:"dropped_queue"`    // packets dropped by the bounded per-beam queues
	DroppedReencode  int   `json:"dropped_reencode"` // packets whose codeword no longer fits a burst after a codec swap
	QueueHighWater   []int `json:"queue_high_water"`

	// End-to-end latency in frames (uplink ingress to downlink egress).
	// LatencySum is the raw sum over delivered packets, so callers can
	// compute means over run segments (phase B mean = sum delta over
	// delivered delta); LatencyMean is the whole-run mean.
	LatencySum  int     `json:"latency_sum"`
	LatencyMean float64 `json:"latency_mean"`
	LatencyMax  int     `json:"latency_max"`

	// Downlink verification (ground demodulation of the transmitted
	// wideband block); only populated when Config.Verify is set.
	Verified        bool `json:"verified"`
	DownlinkLost    int  `json:"downlink_lost"`
	DownlinkBitErrs int  `json:"downlink_bit_errs"`

	WallSeconds  float64 `json:"wall_seconds"`
	ModelSeconds float64 `json:"model_seconds"`

	// PerClass breaks the downlink queue and delivery figures down by
	// traffic class (one row per switchfab class, BE first). Populated
	// by Metrics and Report alike; all-BE runs concentrate in row 0.
	PerClass []ClassStats `json:"per_class"`

	// PerPopulation carries one row per aggregate population (two-tier
	// model), covering the untraced remainder; absent on purely
	// per-terminal runs, so pre-population report JSON is unchanged.
	PerPopulation []PopulationStats `json:"per_population,omitempty"`

	PerTerminal []TerminalStats `json:"per_terminal"`
}

// multiClass reports whether any priority class (AF/EF) saw traffic —
// the gate for the per-class summary lines (an all-BE run would just
// repeat the downlink totals).
func (r *Report) multiClass() bool {
	if len(r.PerClass) != switchfab.NumClasses {
		return false
	}
	for c := int(switchfab.ClassAF); c < switchfab.NumClasses; c++ {
		if r.PerClass[c].RoutedPackets > 0 || r.PerClass[c].DroppedQueue > 0 {
			return true
		}
	}
	return false
}

// FramesPerSecond returns the wall-clock frame rate of the run.
func (r *Report) FramesPerSecond() float64 {
	if r.WallSeconds == 0 {
		return 0
	}
	return float64(r.Frames) / r.WallSeconds
}

// GoodputBps returns the delivered information rate against the
// wall-clock, the software-pipeline throughput figure.
func (r *Report) GoodputBps() float64 {
	if r.WallSeconds == 0 {
		return 0
	}
	return float64(r.DeliveredBits) / r.WallSeconds
}

// ModelGoodputBps returns the delivered information rate against the
// simulated air interface time.
func (r *Report) ModelGoodputBps() float64 {
	if r.ModelSeconds == 0 {
		return 0
	}
	return float64(r.DeliveredBits) / r.ModelSeconds
}

// FrameSeconds returns the air-interface duration of one MF-TDMA frame.
func FrameSeconds(cfg modem.FrameConfig) float64 {
	return float64(cfg.Slots*cfg.SlotSymbols) / modem.SymbolRateTDMA
}

// String renders a compact multi-line run summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "frames: %d (%d outage), %.1f frames/s wall\n", r.Frames, r.OutageFrames, r.FramesPerSecond())
	fmt.Fprintf(&b, "capacity: %d offered, %d granted, %d denied, %d throttled\n",
		r.OfferedCells, r.GrantedCells, r.DeniedCells, r.ThrottledCells)
	fmt.Fprintf(&b, "uplink: %d bursts, %d lost, %d bit errors\n", r.UplinkBursts, r.UplinkFailures, r.UplinkBitErrs)
	fmt.Fprintf(&b, "downlink: %d packets (%d bits), %d queue drops, %d re-encode drops\n",
		r.DeliveredPackets, r.DeliveredBits, r.DroppedQueue, r.DroppedReencode)
	fmt.Fprintf(&b, "goodput: %.0f bit/s wall, %.0f bit/s model\n", r.GoodputBps(), r.ModelGoodputBps())
	fmt.Fprintf(&b, "latency: mean %.2f frames, max %d; queue high water %v\n", r.LatencyMean, r.LatencyMax, r.QueueHighWater)
	if r.Verified {
		fmt.Fprintf(&b, "verify: %d bursts lost on ground demod, %d bit errors\n", r.DownlinkLost, r.DownlinkBitErrs)
	}
	if r.multiClass() {
		for c := switchfab.NumClasses - 1; c >= 0; c-- { // EF first
			cs := r.PerClass[c]
			if cs.RoutedPackets == 0 && cs.DroppedQueue == 0 {
				continue
			}
			fmt.Fprintf(&b, "  class %-2s routed %5d delivered %5d (%7d bits), %d queue drops, latency mean %.2f max %d, high water %d\n",
				cs.Class, cs.RoutedPackets, cs.DeliveredPackets, cs.DeliveredBits,
				cs.DroppedQueue, cs.LatencyMean, cs.LatencyMax, cs.HighWater)
		}
	}
	for _, ps := range r.PerPopulation {
		fmt.Fprintf(&b, "  pop %-8s %-16s %7d members (%d traced) offered %6d granted %6d delivered %6d pkts (%8d bits), %d queue drops, latency mean %.2f max %d\n",
			ps.Name, ps.Model, ps.Members, ps.Tracers, ps.OfferedCells, ps.GrantedCells,
			ps.DeliveredPackets, ps.DeliveredBits, ps.DroppedQueue, ps.LatencyMean, ps.LatencyMax)
	}
	for _, ts := range r.PerTerminal {
		fmt.Fprintf(&b, "  %-10s %-14s offered %4d granted %4d uplink %6d bits delivered %6d bits",
			ts.ID, ts.Model, ts.OfferedCells, ts.GrantedCells, ts.UplinkBits, ts.DeliveredBits)
		if ts.SyncBursts > 0 && (ts.MeanAbsCFO != 0 || ts.MaxAbsCFO != 0) {
			fmt.Fprintf(&b, " cfo %+.4f/%.4f c/sym uw>=%.2f",
				ts.MeanAbsCFO, ts.MaxAbsCFO, ts.MinUWMetric)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
