//go:build !race

package traffic

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
