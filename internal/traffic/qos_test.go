package traffic

import (
	"testing"

	"repro/internal/switchfab"
)

// qosOverloadTerms aims an EF trickle and a BE overload at beam 0:
// 3 cells/frame in against 2 slots/frame out, so the beam's downlink
// backlog grows until the BE class queue drops.
func qosOverloadTerms() []Terminal {
	return []Terminal{
		{ID: "voice", Beam: 0, Class: switchfab.ClassEF, Model: CBR{Cells: 1}},
		{ID: "bulk", Beam: 0, Class: switchfab.ClassBE, Model: CBR{Cells: 2}},
	}
}

func qosConfig(sched switchfab.Scheduler) Config {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	cfg.QueueDepth = 3
	cfg.Seed = 13
	cfg.Scheduler = sched
	return cfg
}

// Strict priority must hold the EF class at zero drops and zero queueing
// delay while best effort absorbs the whole overload — the E13 claim at
// engine scale. Under FIFO the same load queues EF behind the BE
// backlog.
func TestEngineStrictPriorityProtectsEF(t *testing.T) {
	e := newEngine(t, qosConfig(switchfab.StrictPriority{BEFloor: 1}), qosOverloadTerms(), "uncoded")
	if err := e.RunFrames(12); err != nil {
		t.Fatal(err)
	}
	r := e.Report()
	ef, be := r.PerClass[switchfab.ClassEF], r.PerClass[switchfab.ClassBE]
	if ef.DroppedQueue != 0 {
		t.Fatalf("EF dropped %d packets under strict priority", ef.DroppedQueue)
	}
	if ef.LatencyMax != 0 {
		t.Fatalf("EF latency max %d frames under strict priority, want 0", ef.LatencyMax)
	}
	if ef.DeliveredPackets == 0 {
		t.Fatal("EF starved")
	}
	if be.DroppedQueue == 0 {
		t.Fatal("overloaded BE class dropped nothing")
	}
	if be.HighWater != e.Config().QueueDepth {
		t.Fatalf("BE high water %d, want the %d-packet class bound", be.HighWater, e.Config().QueueDepth)
	}
	// The per-class rows must sum to the run totals.
	if ef.DeliveredPackets+be.DeliveredPackets != r.DeliveredPackets ||
		ef.DeliveredBits+be.DeliveredBits != r.DeliveredBits ||
		ef.DroppedQueue+be.DroppedQueue != r.DroppedQueue ||
		ef.LatencySum+be.LatencySum != r.LatencySum {
		t.Fatalf("per-class stats do not sum to the run totals: %+v vs %+v", r.PerClass, r)
	}

	fifo := newEngine(t, qosConfig(switchfab.FIFO{}), qosOverloadTerms(), "uncoded")
	if err := fifo.RunFrames(12); err != nil {
		t.Fatal(err)
	}
	if got := fifo.Report().PerClass[switchfab.ClassEF].LatencyMax; got == 0 {
		t.Fatal("FIFO kept EF latency at zero under a BE overload — the strict run proves nothing")
	}
}

// DRR converges the saturated classes' downlink shares to the weights.
func TestEngineDRRWeightedShares(t *testing.T) {
	d, err := switchfab.NewDRR(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	terms := []Terminal{
		{ID: "ef", Beam: 0, Class: switchfab.ClassEF, Model: CBR{Cells: 2}},
		{ID: "af", Beam: 0, Class: switchfab.ClassAF, Model: CBR{Cells: 1}},
		{ID: "be", Beam: 0, Class: switchfab.ClassBE, Model: CBR{Cells: 1}},
	}
	cfg := qosConfig(d)
	cfg.QueueDepth = 8
	e := newEngine(t, cfg, terms, "uncoded")
	if err := e.RunFrames(24); err != nil {
		t.Fatal(err)
	}
	r := e.Report()
	ef := r.PerClass[switchfab.ClassEF].DeliveredPackets
	af := r.PerClass[switchfab.ClassAF].DeliveredPackets
	be := r.PerClass[switchfab.ClassBE].DeliveredPackets
	if ef == 0 || af == 0 || be == 0 {
		t.Fatalf("a class starved under DRR: %d/%d/%d", ef, af, be)
	}
	// 2 slots/frame on beam 0 at weights 2:1:1 → EF ≈ half the service.
	share := float64(ef) / float64(ef+af+be)
	if share < 0.40 || share > 0.60 {
		t.Fatalf("EF share %.2f under 2:1:1 DRR, want ≈0.5", share)
	}
}

// SetScheduler and SetTerminalClass mutate the live run at frame
// boundaries: the swap changes how queued packets drain, the class
// change marks subsequent packets only, and bad arguments are errors.
func TestSetSchedulerAndClassMidRun(t *testing.T) {
	e := newEngine(t, qosConfig(nil), qosOverloadTerms(), "uncoded")
	if e.Scheduler().Name() != "fifo" {
		t.Fatalf("nil scheduler resolved to %q, want fifo", e.Scheduler().Name())
	}
	if err := e.RunFrames(4); err != nil {
		t.Fatal(err)
	}
	if err := e.SetScheduler(nil); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if err := e.SetScheduler(switchfab.StrictPriority{BEFloor: 1}); err != nil {
		t.Fatal(err)
	}
	if got := e.Config().Scheduler.Name(); got != "strict+be1" {
		t.Fatalf("config scheduler %q after swap", got)
	}
	if err := e.SetTerminalClass("ghost", switchfab.ClassEF); err == nil {
		t.Fatal("unknown terminal accepted")
	}
	if err := e.SetTerminalClass("bulk", switchfab.NumClasses); err == nil {
		t.Fatal("out-of-range class accepted")
	}
	before := e.Metrics().PerClass[switchfab.ClassAF].RoutedPackets
	if before != 0 {
		t.Fatalf("AF saw %d packets before the class change", before)
	}
	if err := e.SetTerminalClass("bulk", switchfab.ClassAF); err != nil {
		t.Fatal(err)
	}
	if err := e.RunFrames(4); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().PerClass[switchfab.ClassAF].RoutedPackets; got == 0 {
		t.Fatal("reclassified terminal still routes BE")
	}
}
