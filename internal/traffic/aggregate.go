package traffic

import (
	"fmt"
	"math"

	"repro/internal/switchfab"
)

// AggregateModel is the population-level form of a Model: one arrival
// process standing in for an entire population class. A population of
// Count members is indexed 0..Count-1; BlockDemand sums the per-frame
// demand of a contiguous run of member indices in one call, so a beam's
// share of a 10^5-member population costs the same as one terminal's.
// Member instantiates the per-terminal form of one member — the tracer
// path — and the two views must agree: for the analytic models
// BlockDemand(f, lo, hi) equals the sum of Member(j).Demand(f) over
// [lo, hi) exactly; for RNG-driven models it matches in mean (the
// engine subtracts the tracers' own draws from the block total, so an
// everyone-traced population contributes no aggregate demand at all and
// stays bit-identical to the per-terminal engine).
type AggregateModel interface {
	Name() string
	// BlockDemand returns the cells requested at frame f by members
	// [lo, hi) together. Implementations must be deterministic under
	// their configuration (and seed) and O(1)-ish in hi-lo.
	BlockDemand(frame, lo, hi int) int
	// Member returns the per-terminal model of member j, the model a
	// tracer terminal for that member runs.
	Member(j int) Model
}

// MemberBeam maps population member j of count onto one of nb beam
// slots by contiguous blocks (member 0..count/nb-ish on slot 0, and so
// on). The block partition keeps each beam's member-index range
// contiguous, which is what lets BlockDemand stay O(1) per beam. The
// scenario layer and the engine must agree on this mapping, so it lives
// here.
func MemberBeam(member, count, nb int) int {
	if count <= 0 || nb <= 0 {
		return 0
	}
	return member * nb / count
}

// memberBlock returns the member-index range [lo, hi) homed on beam
// slot bi — the inverse of MemberBeam.
func memberBlock(bi, count, nb int) (lo, hi int) {
	lo = (bi*count + nb - 1) / nb
	hi = ((bi+1)*count + nb - 1) / nb
	return lo, hi
}

// AggregateCBR is the population form of CBR: every member requests
// Cells cells every frame.
type AggregateCBR struct{ Cells int }

// Name implements AggregateModel.
func (m AggregateCBR) Name() string { return fmt.Sprintf("agg-cbr-%d", m.Cells) }

// BlockDemand implements AggregateModel.
func (m AggregateCBR) BlockDemand(_, lo, hi int) int { return (hi - lo) * m.Cells }

// Member implements AggregateModel.
func (m AggregateCBR) Member(int) Model { return CBR{Cells: m.Cells} }

// AggregateOnOff is the population form of OnOff with members spread
// uniformly over the cycle: member j runs at phase Phase+j, the
// convention the scenario population builders established, so the
// block total is a closed-form count of on-phase members rather than a
// per-member loop.
type AggregateOnOff struct {
	On, Off int // period lengths in frames
	Cells   int // demand during a member's on-period
	Phase   int // phase of member 0; member j runs at Phase+j
}

// Name implements AggregateModel.
func (m AggregateOnOff) Name() string {
	return fmt.Sprintf("agg-onoff-%d/%d-%d", m.On, m.Off, m.Cells)
}

// onCountBelow returns the number of y in [0, x) with y mod period in
// the on-window — the prefix-sum form of the on/off square wave.
func (m AggregateOnOff) onCountBelow(x int) int {
	period := m.On + m.Off
	return (x/period)*m.On + min(x%period, m.On)
}

// BlockDemand implements AggregateModel: members [lo, hi) occupy the
// consecutive phase window [frame+Phase+lo, frame+Phase+hi), so the
// on-phase member count is a prefix-sum difference — O(1) whatever the
// block size. Negative absolute positions (a negative phase beyond the
// frame count) replicate OnOff.Demand's truncated-mod semantics
// exactly: (x % period) < On with Go's %, which for x < 0 yields a
// residue in (-period, 0] — on whenever On > 0.
func (m AggregateOnOff) BlockDemand(frame, lo, hi int) int {
	period := m.On + m.Off
	if period <= 0 || hi <= lo {
		return 0
	}
	s, e := frame+m.Phase+lo, frame+m.Phase+hi
	on := 0
	if s < 0 {
		stop := min(e, 0)
		n := stop - s
		if m.On > 0 {
			on += n
		} else {
			// On == 0: a negative position is on only when its truncated
			// residue is strictly negative, i.e. it is not a multiple of
			// the period.
			on += n - (floorDiv(stop-1, period) - floorDiv(s-1, period))
		}
		s = stop
	}
	if e > s {
		on += m.onCountBelow(e) - m.onCountBelow(s)
	}
	return on * m.Cells
}

// floorDiv is floor(a/b) for b > 0, exact for negative a (Go's / is
// truncated).
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Member implements AggregateModel.
func (m AggregateOnOff) Member(j int) Model {
	return OnOff{On: m.On, Off: m.Off, Cells: m.Cells, Phase: m.Phase + j}
}

// AggregateHotspot is the population form of Hotspot: all members surge
// together (the flash-crowd shape), so the block total is just the
// member count times the instantaneous per-member rate.
type AggregateHotspot struct {
	Base   int // cells per member per frame outside the surge
	Surge  int // cells per member per frame during the surge
	Period int // frames between surge starts
	Width  int // surge length in frames
}

// Name implements AggregateModel.
func (m AggregateHotspot) Name() string { return fmt.Sprintf("agg-hotspot-%d/%d", m.Base, m.Surge) }

// BlockDemand implements AggregateModel.
func (m AggregateHotspot) BlockDemand(frame, lo, hi int) int {
	rate := m.Base
	if m.Period > 0 && frame%m.Period < m.Width {
		rate = m.Surge
	}
	return (hi - lo) * rate
}

// Member implements AggregateModel.
func (m AggregateHotspot) Member(int) Model {
	return Hotspot{Base: m.Base, Surge: m.Surge, Period: m.Period, Width: m.Width}
}

// AggregateBernoulli is the RNG-driven aggregate: each member
// independently requests Cells cells with probability P each frame.
// Member draws come from a counter-based hash of (Seed, member, frame)
// — one logical RNG for the whole population, deterministic under the
// seed with no per-member generator state. Small blocks sum the member
// draws exactly; large blocks draw the binomial total through its
// normal approximation (mean n·P·Cells, variance n·P(1−P)·Cells²) from
// a hash of (Seed, frame, lo, hi), so per-beam demand stays O(1) in the
// member count. The two regimes agree in mean and variance, which is
// the contract the aggregate-statistics tests pin.
type AggregateBernoulli struct {
	P     float64 // per-member per-frame request probability
	Cells int     // cells per request
	Seed  int64
}

// exactBlockMax bounds the block size summed member by member; beyond
// it the normal approximation takes over (a binomial at n > 64 with the
// P values populations use is comfortably normal).
const exactBlockMax = 64

// Name implements AggregateModel.
func (m AggregateBernoulli) Name() string { return fmt.Sprintf("agg-bern-%.2f-%d", m.P, m.Cells) }

// SplitMix64 is the counter-based hash behind the Bernoulli draws — the
// standard SplitMix64 finalizer, full-period and well distributed.
// Exported because it is also the repo's seed-derivation primitive: the
// campaign runner hashes (campaign seed, run index) through it to give
// every Monte Carlo run an independent deterministic engine seed.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4b9fe
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashUnit reduces a hash to a uniform float64 in [0, 1).
func hashUnit(x uint64) float64 {
	return float64(SplitMix64(x)>>11) / (1 << 53)
}

// memberDraw is one member's Bernoulli draw at one frame.
func (m AggregateBernoulli) memberDraw(frame, j int) int {
	x := uint64(m.Seed) ^ uint64(j)*0x9e3779b97f4a7c15 ^ uint64(frame)*0xd1b54a32d192ed03
	if hashUnit(x) < m.P {
		return m.Cells
	}
	return 0
}

// BlockDemand implements AggregateModel.
func (m AggregateBernoulli) BlockDemand(frame, lo, hi int) int {
	n := hi - lo
	if n <= 0 || m.P <= 0 || m.Cells <= 0 {
		return 0
	}
	if n <= exactBlockMax {
		d := 0
		for j := lo; j < hi; j++ {
			d += m.memberDraw(frame, j)
		}
		return d
	}
	// Box–Muller from two counter-based uniforms keyed on the block, so
	// the draw is a pure function of (seed, frame, lo, hi).
	base := uint64(m.Seed) ^ uint64(frame)*0xd1b54a32d192ed03 ^ uint64(lo)*0x9e3779b97f4a7c15 ^ uint64(hi)*0xbf58476d1ce4b9fb
	u1 := hashUnit(base)
	u2 := hashUnit(base + 1)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	mean := float64(n) * m.P
	sd := math.Sqrt(float64(n) * m.P * (1 - m.P))
	requests := int(math.Round(mean + sd*z))
	if requests < 0 {
		requests = 0
	}
	if requests > n {
		requests = n
	}
	return requests * m.Cells
}

// Member implements AggregateModel.
func (m AggregateBernoulli) Member(j int) Model { return bernoulliMember{m: m, j: j} }

// bernoulliMember is the per-terminal (tracer) view of one
// AggregateBernoulli member: the same counter-based draw the aggregate
// uses, bound to member index j.
type bernoulliMember struct {
	m AggregateBernoulli
	j int
}

// Name implements Model.
func (b bernoulliMember) Name() string { return fmt.Sprintf("bern-%.2f-%d", b.m.P, b.m.Cells) }

// Demand implements Model.
func (b bernoulliMember) Demand(frame int) int { return b.m.memberDraw(frame, b.j) }

// Population is one aggregate population class: Count members homed on
// Beams by contiguous blocks (MemberBeam), driven by one AggregateModel
// instead of Count individual terminals. A sampled subset of members —
// the tracers — keeps the full per-terminal path; their member indices
// are listed here (sorted ascending) so the engine can subtract their
// individual demand from the aggregate block totals, while the tracer
// Terminals themselves ride the engine's ordinary terminal list (in
// whatever join order the caller admits them).
type Population struct {
	Name  string
	Class switchfab.Class
	Beams []int
	Count int
	Model AggregateModel
	// TracerMembers are the member indices modeled as full terminals,
	// sorted ascending, each in [0, Count). Their Member models must
	// match the admitted tracer terminals' models, or the population
	// total drifts from Count independent sources.
	TracerMembers []int
}
