package traffic

import (
	"encoding/json"
	"testing"

	"repro/internal/payload"
	"repro/internal/telemetry"
)

// pipeTestSetup builds the engine shape the pipelined-runner tests
// share: backpressure admission (the scheduler-fill ordering dependency
// the handoff must preserve), ground verification (the deferred-delta
// fold path), uplink noise and one impaired channel (real demod work on
// both half-frames).
func pipeTestSetup(t *testing.T) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 3)
	cfg.Seed = 23
	cfg.QueueDepth = 4
	cfg.Policy = Backpressure
	cfg.Verify = true
	cfg.EbN0dB = 9
	return newEngine(t, cfg, []Terminal{
		{ID: "t0", Beam: 0, Model: CBR{Cells: 2}},
		{ID: "t1", Beam: 0, Model: OnOff{On: 2, Off: 1, Cells: 2}},
		{ID: "t2", Beam: 1, Model: CBR{Cells: 1}, Channel: &ChannelProfile{CFO: 0.02}},
	}, "conv-r1/2-k9")
}

// reportJSON canonicalizes a report for bit-identity comparison; wall
// time is the one legitimately nondeterministic field.
func reportJSON(t *testing.T, r *Report) string {
	t.Helper()
	r.WallSeconds = 0
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// The runner's contract in one test: stepping through the pipeline —
// including a mid-run drain-and-resume — produces bit-for-bit the
// report of plain sequential stepping, ground-verify counters included.
func TestPipelinedRunnerBitIdenticalToSequential(t *testing.T) {
	const frames = 12
	seq := pipeTestSetup(t)
	if err := seq.RunFrames(frames); err != nil {
		t.Fatal(err)
	}

	pip := pipeTestSetup(t)
	r := NewPipelinedRunner(pip)
	defer r.Close()
	for f := 0; f < frames; f++ {
		if err := r.Step(); err != nil {
			t.Fatal(err)
		}
		if f == frames/2 {
			// A mid-run drain (what the session does before events)
			// must not disturb the run.
			if err := r.Drain(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := r.PipelinedFrames(); got != frames {
		t.Fatalf("dispatched %d frames, want %d", got, frames)
	}

	want := reportJSON(t, seq.Report())
	got := reportJSON(t, pip.Report())
	if got != want {
		t.Fatalf("pipelined report diverged from sequential\nseq: %s\npip: %s", want, got)
	}
}

// Verify counters are deferred one frame: after Step(N) the in-flight
// frame's downlink outcome is not yet folded, and Drain catches the
// report up exactly.
func TestPipelinedRunnerDrainFoldsVerify(t *testing.T) {
	seq := pipeTestSetup(t)
	pip := pipeTestSetup(t)
	r := NewPipelinedRunner(pip)
	defer r.Close()
	for f := 0; f < 6; f++ {
		if err := seq.Step(); err != nil {
			t.Fatal(err)
		}
		if err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	sm, pm := seq.Metrics(), pip.Metrics()
	if sm.DownlinkLost != pm.DownlinkLost || sm.DownlinkBitErrs != pm.DownlinkBitErrs {
		t.Fatalf("verify counters after drain: seq lost/errs %d/%d, pipelined %d/%d",
			sm.DownlinkLost, sm.DownlinkBitErrs, pm.DownlinkLost, pm.DownlinkBitErrs)
	}
}

// An outage window mid-run (coding device powered off) passes through
// the runner without dispatching egress work, and the run stays
// bit-identical to the sequential engine under the same fault. The
// chipset mutation happens at a drained boundary — the documented
// out-of-band mutation rule.
func TestPipelinedRunnerOutageFrames(t *testing.T) {
	outage := func(e *Engine, step func() error, drain func() error) *Report {
		t.Helper()
		var dev string
		for _, d := range e.pl.Chipset().DevicesFor(payload.FuncCoding) {
			dev = d
		}
		d, _ := e.pl.Chipset().Device(dev)
		run := func(n int) {
			for i := 0; i < n; i++ {
				if err := step(); err != nil {
					t.Fatal(err)
				}
			}
		}
		run(3)
		if err := drain(); err != nil {
			t.Fatal(err)
		}
		d.PowerOff()
		run(2)
		if err := drain(); err != nil {
			t.Fatal(err)
		}
		d.PowerOn()
		run(3)
		if err := drain(); err != nil {
			t.Fatal(err)
		}
		return e.Report()
	}

	seq := pipeTestSetup(t)
	noop := func() error { return nil }
	seqRep := outage(seq, seq.Step, noop)

	pip := pipeTestSetup(t)
	r := NewPipelinedRunner(pip)
	defer r.Close()
	pipRep := outage(pip, r.Step, r.Drain)

	if pipRep.OutageFrames != 2 {
		t.Fatalf("outage frames %d, want 2", pipRep.OutageFrames)
	}
	if want, got := reportJSON(t, seqRep), reportJSON(t, pipRep); got != want {
		t.Fatalf("outage run diverged\nseq: %s\npip: %s", want, got)
	}
}

// Close is idempotent and degrades the runner to sequential stepping
// rather than bricking it.
func TestPipelinedRunnerCloseFallsBack(t *testing.T) {
	e := pipeTestSetup(t)
	r := NewPipelinedRunner(e)
	for i := 0; i < 3; i++ {
		if err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	dispatched := r.PipelinedFrames()
	for i := 0; i < 2; i++ {
		if err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Frame() != 5 {
		t.Fatalf("frame clock %d after post-Close steps, want 5", e.Frame())
	}
	if r.PipelinedFrames() != dispatched {
		t.Fatal("post-Close steps were dispatched to the dead worker")
	}
}

// The occupancy timers record one (stall, overlap) pair per joined
// frame, and overlap+stall reconstructs the egress wall time (overlap
// is clamped non-negative, so the sum is bounded by it).
func TestPipelinedRunnerTimers(t *testing.T) {
	e := pipeTestSetup(t)
	r := NewPipelinedRunner(e)
	defer r.Close()
	reg := telemetry.NewRegistry()
	pt := NewPipelineTimers(reg)
	r.SetTimers(pt)
	const frames = 5
	for i := 0; i < frames; i++ {
		if err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := pt.Stall.Count(); got != frames {
		t.Fatalf("stall observations %d, want %d", got, frames)
	}
	if got := pt.Overlap.Count(); got != frames {
		t.Fatalf("overlap observations %d, want %d", got, frames)
	}
	if pt.Overlap.Name() != "engine.pipeline.overlap_ns" || pt.Stall.Name() != "engine.pipeline.stall_ns" {
		t.Fatalf("timer keys %q / %q", pt.Overlap.Name(), pt.Stall.Name())
	}
}
