package traffic

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// TestMemberBeamPartition pins the contiguous block partition: every
// member lands on exactly one beam slot, memberBlock is the exact
// inverse image of MemberBeam, and the blocks tile [0, count).
func TestMemberBeamPartition(t *testing.T) {
	for _, tc := range []struct{ count, nb int }{
		{1, 1}, {5, 2}, {7, 3}, {100, 3}, {3, 5}, {100000, 6},
	} {
		covered := 0
		for bi := 0; bi < tc.nb; bi++ {
			lo, hi := memberBlock(bi, tc.count, tc.nb)
			if lo != covered {
				t.Fatalf("count=%d nb=%d: block %d starts at %d, want %d", tc.count, tc.nb, bi, lo, covered)
			}
			for j := lo; j < hi; j++ {
				if got := MemberBeam(j, tc.count, tc.nb); got != bi {
					t.Fatalf("count=%d nb=%d: member %d on beam %d, block says %d", tc.count, tc.nb, j, got, bi)
				}
			}
			covered = hi
		}
		if covered != tc.count {
			t.Fatalf("count=%d nb=%d: blocks cover %d members", tc.count, tc.nb, covered)
		}
	}
}

// TestAggregateBlockDemandMatchesMembers is the two-tier exactness
// contract for the analytic models: BlockDemand over any member range
// equals the sum of the per-member tracer models' Demand, at every
// frame — the identity that makes tracer subtraction exact.
func TestAggregateBlockDemandMatchesMembers(t *testing.T) {
	models := []AggregateModel{
		AggregateCBR{Cells: 2},
		AggregateOnOff{On: 3, Off: 2, Cells: 2},
		AggregateOnOff{On: 1, Off: 4, Cells: 1, Phase: 7},
		AggregateOnOff{On: 2, Off: 3, Cells: 3, Phase: -11},
		AggregateHotspot{Base: 1, Surge: 5, Period: 8, Width: 2},
	}
	blocks := [][2]int{{0, 1}, {0, 17}, {3, 9}, {5, 40}, {12, 13}}
	for _, m := range models {
		for _, blk := range blocks {
			lo, hi := blk[0], blk[1]
			for f := 0; f < 25; f++ {
				want := 0
				for j := lo; j < hi; j++ {
					want += m.Member(j).Demand(f)
				}
				if got := m.BlockDemand(f, lo, hi); got != want {
					t.Fatalf("%s frame %d block [%d,%d): BlockDemand %d, member sum %d", m.Name(), f, lo, hi, got, want)
				}
			}
		}
	}
}

// TestAggregateBernoulliExactBlocks checks the small-block regime sums
// the very draws the tracer models make, so subtraction stays exact up
// to exactBlockMax members.
func TestAggregateBernoulliExactBlocks(t *testing.T) {
	m := AggregateBernoulli{P: 0.3, Cells: 2, Seed: 99}
	for f := 0; f < 40; f++ {
		want := 0
		for j := 5; j < 5+exactBlockMax; j++ {
			want += m.Member(j).Demand(f)
		}
		if got := m.BlockDemand(f, 5, 5+exactBlockMax); got != want {
			t.Fatalf("frame %d: exact block %d, member sum %d", f, got, want)
		}
	}
}

// TestAggregateBernoulliStatistics is the satellite-4 statistics
// contract: across seeds, the per-frame demand of the aggregate (in
// its large-block normal regime) matches the mean of N independently
// stepped per-terminal members, with variance in the binomial
// ballpark. Tolerances are generous (5 sigma of the mean estimator)
// so the test is seed-robust while still catching a broken scale.
func TestAggregateBernoulliStatistics(t *testing.T) {
	const (
		n      = 2000 // members: far beyond exactBlockMax
		frames = 400
		p      = 0.05
		cells  = 1
	)
	for _, seed := range []int64{1, 42, 777} {
		m := AggregateBernoulli{P: p, Cells: cells, Seed: seed}

		// Aggregate (normal-approximation) path.
		aggSum, aggSq := 0.0, 0.0
		for f := 0; f < frames; f++ {
			d := float64(m.BlockDemand(f, 0, n))
			aggSum += d
			aggSq += d * d
		}
		aggMean := aggSum / frames
		aggVar := aggSq/frames - aggMean*aggMean

		// N independently stepped per-terminal members.
		memSum := 0.0
		for f := 0; f < frames; f++ {
			d := 0
			for j := 0; j < n; j++ {
				d += m.Member(j).Demand(f)
			}
			memSum += float64(d)
		}
		memMean := memSum / frames

		wantMean := float64(n) * p * cells
		wantVar := float64(n) * p * (1 - p) * cells * cells
		// 5 sigma of the frame-averaged mean estimator.
		tol := 5 * math.Sqrt(wantVar/frames)
		if math.Abs(aggMean-wantMean) > tol {
			t.Fatalf("seed %d: aggregate mean %.1f, want %.1f +/- %.1f", seed, aggMean, wantMean, tol)
		}
		if math.Abs(memMean-wantMean) > tol {
			t.Fatalf("seed %d: member mean %.1f, want %.1f +/- %.1f", seed, memMean, wantMean, tol)
		}
		if aggVar < wantVar/3 || aggVar > wantVar*3 {
			t.Fatalf("seed %d: aggregate variance %.1f outside [%.1f, %.1f]", seed, aggVar, wantVar/3, wantVar*3)
		}
	}
}

// popTerms builds the tracer terminal list for a population the way the
// scenario layer does (all members traced when n == count).
func popTerms(name string, pop Population) []Terminal {
	nb := len(pop.Beams)
	out := make([]Terminal, len(pop.TracerMembers))
	for i, j := range pop.TracerMembers {
		out[i] = Terminal{
			ID:    fmt.Sprintf("%s.%d", name, j),
			Beam:  pop.Beams[MemberBeam(j, pop.Count, nb)],
			Class: pop.Class,
			Model: pop.Model.Member(j),
		}
	}
	return out
}

// TestPopulationEveryoneTracedBitIdentical is the refactor's safety
// invariant at the engine level: a population with Count == Tracers
// must reproduce the plain per-terminal engine bit for bit — same
// grants, same bursts, same delivered bits, same latency — because the
// aggregate remainder is empty and contributes nothing, not even RNG
// draws.
func TestPopulationEveryoneTracedBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	cfg.Seed = 9

	mkPop := func(name string, count int, m AggregateModel) Population {
		members := make([]int, count)
		for i := range members {
			members[i] = i
		}
		return Population{Name: name, Beams: []int{0, 1}, Count: count, Model: m, TracerMembers: members}
	}
	pops := []Population{
		mkPop("cbr", 2, AggregateCBR{Cells: 1}),
		mkPop("oo", 3, AggregateOnOff{On: 2, Off: 3, Cells: 1, Phase: 1}),
	}
	var terms []Terminal
	for _, p := range pops {
		terms = append(terms, popTerms(p.Name, p)...)
	}

	plain := newEngine(t, cfg, terms, "uncoded")
	if err := plain.RunFrames(12); err != nil {
		t.Fatal(err)
	}
	twoTier, err := NewPopulations(bootPayload(t, 2, "uncoded"), cfg, terms, pops)
	if err != nil {
		t.Fatal(err)
	}
	if err := twoTier.RunFrames(12); err != nil {
		t.Fatal(err)
	}

	a, b := plain.Report(), twoTier.Report()
	for _, ps := range b.PerPopulation {
		if ps.Tracers != ps.Members {
			t.Fatalf("population %s: %d tracers of %d members, want all traced", ps.Name, ps.Tracers, ps.Members)
		}
		if ps.OfferedCells != 0 || ps.GrantedCells != 0 || ps.RoutedPackets != 0 || ps.DeliveredPackets != 0 {
			t.Fatalf("population %s: everyone traced but aggregate remainder saw traffic: %+v", ps.Name, ps)
		}
	}
	// Timing aside, the reports must agree exactly once the (all-zero)
	// population rows are set aside.
	a.WallSeconds, b.WallSeconds = 0, 0
	b.PerPopulation = nil
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("everyone-traced run diverged from the plain engine:\nplain: %+v\ntwo-tier: %+v", a, b)
	}
}

// TestPopulationAggregateAccounting runs a mostly-untraced population
// end to end and checks the admission/delivery ledger balances: every
// granted aggregate cell becomes exactly one fabric packet (routed or
// tail-dropped), delivery never exceeds routing, and the whole-engine
// counters include the population's share.
func TestPopulationAggregateAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	cfg.Seed = 3
	pop := Population{
		Name:          "bulk",
		Beams:         []int{0, 1},
		Count:         40,
		Model:         AggregateCBR{Cells: 1},
		TracerMembers: []int{0, 20},
	}
	terms := popTerms("bulk", pop)
	e, err := NewPopulations(bootPayload(t, 2, "uncoded"), cfg, terms, []Population{pop})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunFrames(10); err != nil {
		t.Fatal(err)
	}
	r := e.Report()
	if len(r.PerPopulation) != 1 {
		t.Fatalf("%d population rows", len(r.PerPopulation))
	}
	ps := r.PerPopulation[0]
	if ps.Members != 40 || ps.Tracers != 2 {
		t.Fatalf("member split %d/%d", ps.Members, ps.Tracers)
	}
	// 38 untraced members at 1 cell/frame over 10 frames.
	if ps.OfferedCells != 38*10 {
		t.Fatalf("offered %d, want %d", ps.OfferedCells, 38*10)
	}
	if ps.GrantedCells == 0 {
		t.Fatal("aggregate never granted")
	}
	if ps.GrantedCells+ps.DeniedCells+ps.ThrottledCells != ps.OfferedCells {
		t.Fatalf("admission ledger: %d granted + %d denied + %d throttled != %d offered",
			ps.GrantedCells, ps.DeniedCells, ps.ThrottledCells, ps.OfferedCells)
	}
	if ps.RoutedPackets+ps.DroppedQueue != ps.GrantedCells {
		t.Fatalf("fabric ledger: %d routed + %d dropped != %d granted", ps.RoutedPackets, ps.DroppedQueue, ps.GrantedCells)
	}
	if ps.DeliveredPackets == 0 || ps.DeliveredPackets > ps.RoutedPackets {
		t.Fatalf("delivered %d of %d routed", ps.DeliveredPackets, ps.RoutedPackets)
	}
	if ps.DeliveredBits == 0 || ps.DeliveredBits%ps.DeliveredPackets != 0 {
		t.Fatalf("delivered %d bits over %d packets", ps.DeliveredBits, ps.DeliveredPackets)
	}
	// Population traffic is inside the engine totals, not beside them.
	if r.GrantedCells < ps.GrantedCells || r.DeliveredPackets < ps.DeliveredPackets {
		t.Fatalf("engine totals below the population's share: %+v vs %+v", r, ps)
	}
}

// TestPopulationDeterministic: two engines over the same populations
// and seed agree on every metric, including the RNG-driven aggregate.
func TestPopulationDeterministic(t *testing.T) {
	mk := func() *Report {
		cfg := DefaultConfig()
		cfg.Frame = smallFrame(2, 2)
		cfg.Seed = 17
		pop := Population{
			Name:          "rng",
			Beams:         []int{0, 1},
			Count:         500,
			Model:         AggregateBernoulli{P: 0.01, Cells: 1, Seed: 4},
			TracerMembers: []int{0, 250},
		}
		terms := popTerms("rng", pop)
		e, err := NewPopulations(bootPayload(t, 2, "uncoded"), cfg, terms, []Population{pop})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RunFrames(15); err != nil {
			t.Fatal(err)
		}
		r := e.Report()
		r.WallSeconds = 0
		return r
	}
	if a, b := mk(), mk(); !reflect.DeepEqual(a, b) {
		t.Fatalf("population runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestJoinStorm is the satellite-1 regression: a join/leave storm must
// stay fast (the ID index map replaced the O(n) scans) and correct —
// duplicates rejected, lookups exact, leaves final.
func TestJoinStorm(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	e := newEngine(t, cfg, []Terminal{{ID: "seed", Beam: 0, Model: CBR{Cells: 1}}}, "uncoded")
	const storm = 2000
	for i := 0; i < storm; i++ {
		id := fmt.Sprintf("s%d", i)
		if err := e.AddTerminal(Terminal{ID: id, Beam: i % 2, Model: OnOff{On: 1, Off: 999, Cells: 1, Phase: i}}); err != nil {
			t.Fatal(err)
		}
		if err := e.AddTerminal(Terminal{ID: id, Beam: 0, Model: CBR{Cells: 1}}); err == nil {
			t.Fatalf("duplicate %s accepted", id)
		}
	}
	if got := len(e.Terminals()); got != storm+1 {
		t.Fatalf("%d terminals after storm", got)
	}
	if err := e.SetTerminalChannel(fmt.Sprintf("s%d", storm-1), nil); err != nil {
		t.Fatal(err)
	}
	if err := e.SetTerminalChannel("nope", nil); err == nil {
		t.Fatal("lookup invented a terminal")
	}
	for i := 0; i < storm; i++ {
		if err := e.RemoveTerminal(fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RemoveTerminal("s0"); err == nil {
		t.Fatal("double leave accepted")
	}
	if got := len(e.Terminals()); got != 1 {
		t.Fatalf("%d terminals after drain", got)
	}
	if err := e.RunFrames(2); err != nil {
		t.Fatal(err)
	}
}
