package traffic

import (
	"strings"
	"testing"

	"repro/internal/modem"
)

// QueueDepth must tolerate out-of-range beams: observers probe queues
// freely, and a bad beam is "nothing queued", not a panic.
func TestQueueDepthOutOfRangeBeam(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	// 3 cells/frame into beam 0 against 2 downlink slots: the queue
	// holds a backlog at every frame boundary.
	terms := []Terminal{{ID: "t0", Beam: 0, Model: CBR{Cells: 3}}}
	e := newEngine(t, cfg, terms, "uncoded")
	if err := e.RunFrames(2); err != nil {
		t.Fatal(err)
	}
	for _, beam := range []int{-1, 2, 99} {
		if got := e.QueueDepth(beam); got != 0 {
			t.Fatalf("QueueDepth(%d) = %d, want 0", beam, got)
		}
	}
	if e.QueueDepth(0) == 0 {
		t.Fatal("backlogged beam reports an empty queue")
	}
}

// RunFrames must reject a non-positive frame count explicitly instead
// of silently doing nothing.
func TestRunFramesNonPositive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	terms := []Terminal{{ID: "t0", Beam: 0, Model: CBR{Cells: 1}}}
	e := newEngine(t, cfg, terms, "uncoded")
	for _, n := range []int{0, -3} {
		err := e.RunFrames(n)
		if err == nil {
			t.Fatalf("RunFrames(%d) accepted", n)
		}
		if !strings.Contains(err.Error(), "positive") {
			t.Fatalf("RunFrames(%d) error %q does not name the problem", n, err)
		}
	}
	if e.Frame() != 0 {
		t.Fatalf("rejected calls still advanced the clock to %d", e.Frame())
	}
}

// A terminal joining mid-run starts granting on the next frame; one
// leaving stops immediately, releases its slots, keeps its report row,
// and packets it already queued still deliver to its stats.
func TestJoinLeaveMidRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	cfg.Seed = 5
	terms := []Terminal{{ID: "a", Beam: 0, Model: CBR{Cells: 1}}}
	e := newEngine(t, cfg, terms, "uncoded")
	if err := e.RunFrames(2); err != nil {
		t.Fatal(err)
	}
	if err := e.AddTerminal(Terminal{ID: "b", Beam: 1, Model: CBR{Cells: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddTerminal(Terminal{ID: "a", Beam: 0, Model: CBR{Cells: 1}}); err == nil {
		t.Fatal("duplicate join accepted")
	}
	if err := e.AddTerminal(Terminal{ID: "c", Beam: 9, Model: CBR{Cells: 1}}); err == nil {
		t.Fatal("out-of-range beam accepted")
	}
	if err := e.RunFrames(3); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveTerminal("b"); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveTerminal("b"); err == nil {
		t.Fatal("double leave accepted")
	}
	if err := e.RunFrames(2); err != nil {
		t.Fatal(err)
	}
	r := e.Report()
	if len(r.PerTerminal) != 2 {
		t.Fatalf("%d report rows, want 2", len(r.PerTerminal))
	}
	b := r.PerTerminal[1]
	if b.ID != "b" {
		t.Fatalf("second row %q", b.ID)
	}
	if b.GrantedCells != 3*2 {
		t.Fatalf("b granted %d cells over its 3 active frames, want 6", b.GrantedCells)
	}
	if b.DeliveredBits == 0 {
		t.Fatal("b's queued packets vanished on leave")
	}
	if got := len(e.Terminals()); got != 1 {
		t.Fatalf("%d active terminals", got)
	}
}

// Determinism survives population churn: two engines applying the same
// mutations at the same frame boundaries agree on every metric.
func TestMutationDeterministic(t *testing.T) {
	mk := func() *Report {
		cfg := DefaultConfig()
		cfg.Frame = smallFrame(2, 2)
		cfg.Verify = true
		cfg.EbN0dB = 8
		cfg.Seed = 3
		terms := []Terminal{{ID: "a", Beam: 0, Model: CBR{Cells: 1}}}
		e := newEngine(t, cfg, terms, "conv-r1/2-k9")
		if err := e.RunFrames(2); err != nil {
			t.Fatal(err)
		}
		if err := e.AddTerminal(Terminal{ID: "b", Beam: 1, Model: OnOff{On: 2, Off: 1, Cells: 2}}); err != nil {
			t.Fatal(err)
		}
		if err := e.RunFrames(2); err != nil {
			t.Fatal(err)
		}
		if err := e.RemoveTerminal("a"); err != nil {
			t.Fatal(err)
		}
		if err := e.RunFrames(2); err != nil {
			t.Fatal(err)
		}
		r := e.Report()
		r.WallSeconds = 0
		return r
	}
	a, b := mk(), mk()
	if a.String() != b.String() {
		t.Fatalf("runs diverged:\n%v\nvs\n%v", a, b)
	}
}

// SetTerminalChannel re-resolves the payload sync chain mid-run in both
// directions, and an explicit payload configuration stays sticky.
func TestSetTerminalChannelResolvesSync(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	terms := []Terminal{{ID: "a", Beam: 0, Model: CBR{Cells: 1}}}
	e := newEngine(t, cfg, terms, "conv-r1/2-k9")
	pl := e.pl
	if pl.SyncConfig() != (modem.SyncConfig{}) {
		t.Fatal("clean engine booted with the full chain")
	}
	if err := e.SetTerminalChannel("a", &ChannelProfile{CFO: 0.05}); err != nil {
		t.Fatal(err)
	}
	if pl.SyncConfig() == (modem.SyncConfig{}) {
		t.Fatal("impairing profile did not engage the sync chain")
	}
	if err := e.SetTerminalChannel("a", nil); err != nil {
		t.Fatal(err)
	}
	if pl.SyncConfig() != (modem.SyncConfig{}) {
		t.Fatal("cleared profile did not restore the legacy chain")
	}
	if err := e.SetTerminalChannel("ghost", nil); err == nil {
		t.Fatal("unknown terminal accepted")
	}

	explicit := modem.SyncConfig{UWThreshold: 0.8}
	pl.SetSyncConfig(explicit)
	if err := e.SetTerminalChannel("a", &ChannelProfile{CFO: 0.05}); err != nil {
		t.Fatal(err)
	}
	if pl.SyncConfig() != explicit {
		t.Fatal("channel change overrode an explicit sync config")
	}
}

// A Doppler ramp installed mid-run anchors at its installation frame:
// the estimated CFO starts at the profile's CFO and ramps from there,
// with no retroactive Drift×frames jump.
func TestMidRunDriftAnchorsAtInstallFrame(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	cfg.EbN0dB = 9
	cfg.Seed = 9
	terms := []Terminal{
		{ID: "a", Beam: 0, Model: CBR{Cells: 1}},
		{ID: "b", Beam: 1, Model: CBR{Cells: 1}},
	}
	e := newEngine(t, cfg, terms, "conv-r1/2-k9")
	if err := e.RunFrames(4); err != nil {
		t.Fatal(err)
	}
	if err := e.SetTerminalChannel("a", &ChannelProfile{CFO: 0.05, Drift: 0.01, Timing: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunFrames(4); err != nil {
		t.Fatal(err)
	}
	r := e.Report()
	if r.UplinkFailures != 0 || r.UplinkBitErrs != 0 {
		t.Fatalf("ramped uplink not clean: %+v", r)
	}
	// Frames 4..7 carry offsets 0.05 + 0.01*{0,1,2,3}: mean 0.065. The
	// old absolute anchoring would have injected 0.05 + 0.01*{4..7}
	// (mean 0.105) — well outside the estimator tolerance band.
	a := r.PerTerminal[0]
	// Only the 4 impaired frames produce nonzero estimates; the first 4
	// rode the legacy chain (estimates pinned 0), so the mean over
	// estimating bursts is checked via MaxAbsCFO and MeanAbsCFO bounds.
	if a.MaxAbsCFO > 0.09 {
		t.Fatalf("max |CFO| estimate %.4f: ramp anchored retroactively", a.MaxAbsCFO)
	}
	if a.MaxAbsCFO < 0.07 || a.MaxAbsCFO > 0.09 {
		t.Fatalf("max |CFO| estimate %.4f, want ~0.08 (ramp end)", a.MaxAbsCFO)
	}
}

// Queue depth and policy changes take effect at the next frame; a
// shrink never evicts queued packets.
func TestSetQueueDepthAndPolicy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frame = smallFrame(2, 2)
	cfg.QueueDepth = 3
	cfg.Seed = 5
	terms := []Terminal{
		{ID: "t0", Beam: 0, Model: CBR{Cells: 2}},
		{ID: "t1", Beam: 0, Model: CBR{Cells: 2}},
	}
	e := newEngine(t, cfg, terms, "uncoded")
	if err := e.RunFrames(4); err != nil {
		t.Fatal(err)
	}
	if hw := e.Report().QueueHighWater[0]; hw != 3 {
		t.Fatalf("beam 0 high water %d before the change, want the old bound 3", hw)
	}
	if err := e.SetQueueDepth(0); err == nil {
		t.Fatal("zero depth accepted")
	}
	if err := e.SetQueueDepth(6); err != nil {
		t.Fatal(err)
	}
	e.SetQueuePolicy(Backpressure)
	dropsBefore := e.Report().DroppedQueue
	if err := e.RunFrames(4); err != nil {
		t.Fatal(err)
	}
	r := e.Report()
	if r.DroppedQueue != dropsBefore {
		t.Fatalf("backpressure still dropped (%d -> %d)", dropsBefore, r.DroppedQueue)
	}
	if r.ThrottledCells == 0 {
		t.Fatal("backpressure never throttled after the policy change")
	}
	if hw := r.QueueHighWater[0]; hw <= 3 || hw > 6 {
		t.Fatalf("high water %d after deepening to 6", hw)
	}
}
