// Command nccctl drives a ground-initiated reconfiguration end to end:
// it assembles the full system (GEO link, protocol stack, on-board
// controller, payload), uploads a waveform or decoder bitstream with the
// selected protocol, pushes the COPS policy, and prints the resulting
// timeline and telemetry — the paper's §3 scenario from the operator's
// seat.
//
// Usage:
//
//	nccctl -action waveform -target tdma -proto scps-fp -window 32
//	nccctl -action decoder -target turbo-r1/3 -proto tftp
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ncc"
	"repro/internal/payload"
)

func main() {
	action := flag.String("action", "waveform", "waveform or decoder")
	target := flag.String("target", "tdma", "waveform (cdma|tdma) or codec name")
	protoName := flag.String("proto", "scps-fp", "upload protocol: tftp or scps-fp")
	window := flag.Int("window", 16, "TCP window for scps-fp (RFC 2488 knob)")
	ber := flag.Float64("ber", 0, "space link bit error rate")
	ipsec := flag.Bool("ipsec", false, "enable the IPsec (ESP) layer")
	flag.Parse()

	proto := ncc.ProtoSCPSFP
	if *protoName == "tftp" {
		proto = ncc.ProtoTFTP
	}

	cfg := core.DefaultSystemConfig()
	cfg.BER = *ber
	cfg.IPsec = *ipsec
	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.RunUntil(2) // COPS session establishment

	var reports []core.ReconfigReport
	switch *action {
	case "waveform":
		mode := payload.ModeTDMA
		if *target == "cdma" {
			mode = payload.ModeCDMA
		}
		reports = sys.MigrateWaveform(mode, proto, *window)
	case "decoder":
		reports = sys.SwapDecoder(*target, proto, *window)
	default:
		log.Fatalf("unknown action %q", *action)
	}

	fmt.Println("reconfiguration reports:")
	for _, r := range reports {
		fmt.Println("  " + r.String())
	}
	fmt.Println("telemetry:")
	for _, l := range sys.Telemetry {
		fmt.Println("  TM " + l)
	}
	if *action == "waveform" {
		fmt.Printf("payload waveform now: %s\n", sys.Payload.Mode())
	} else {
		if c, err := sys.Payload.Codec(); err == nil {
			fmt.Printf("payload decoder now: %s\n", c.Name())
		}
	}
}
