// Command radbench sweeps the radiation/mitigation space of §4: SEU
// rates by orbit and solar activity, TID lifetime budgets, scrubbing
// interval trades, and the payload-level availability of a live
// demodulator under fault injection.
//
// Usage:
//
//	radbench -steps 300 -sweep all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/radiation"
)

func main() {
	steps := flag.Int("steps", 250, "campaign steps (2 days each)")
	sweep := flag.String("sweep", "all", "environment, scrubbing, availability or all")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	want := func(s string) bool { return *sweep == "all" || *sweep == s }

	if want("environment") {
		fmt.Println("== SEU rates by environment (err/bit/day) ==")
		for _, orbit := range []radiation.Orbit{radiation.GEO, radiation.LEO} {
			for _, act := range []radiation.SolarActivity{radiation.SolarQuiet, radiation.SolarActive, radiation.SolarFlare} {
				env := radiation.Environment{Orbit: orbit, Activity: act}
				for _, prof := range []radiation.DeviceProfile{radiation.MH1RT(), radiation.SRAMFPGA()} {
					inj := radiation.NewInjector(prof, env, *seed)
					fmt.Printf("  %-4s %-7s %-10s %.2e\n", orbit, act, prof.Name, inj.RatePerBitDay())
				}
			}
		}
		fmt.Println()
		fmt.Println("== TID lifetime (years, GEO quiet) ==")
		for _, prof := range []radiation.DeviceProfile{radiation.MH1RT(), radiation.MH1RTNext(), radiation.SRAMFPGA()} {
			dt := radiation.NewDoseTracker(prof)
			env := radiation.Environment{Orbit: radiation.GEO, Activity: radiation.SolarQuiet}
			fmt.Printf("  %-14s %.0f\n", prof.Name, dt.MarginYears(env))
		}
		fmt.Println()
	}
	if want("scrubbing") {
		experiments.E6ScrubbingSweep(*steps, []int{0, 16, 8, 4, 2, 1}, *seed).Print(os.Stdout)
		experiments.AblationScrubbers(*steps, *seed).Print(os.Stdout)
	}
	if want("availability") {
		experiments.E6PayloadAvailabilityComparison(*steps, *seed).Print(os.Stdout)
	}
}
