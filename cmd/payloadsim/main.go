// Command payloadsim runs uplink traffic through the regenerative payload
// (Fig 2): modulate user data in the selected waveform, pass it through
// an AWGN channel, and let the payload demodulate, decode and switch it,
// printing the resulting error rates and switch statistics. Packets are
// grouped into MF-TDMA frames of one burst per carrier and received on
// the concurrent batch path (Payload.ProcessFrame), one worker per
// carrier as on the FPGA bank.
//
// Usage:
//
//	payloadsim -waveform tdma -codec conv-r1/2-k9 -ebn0 4 -packets 20
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/cdma"
	"repro/internal/dsp"
	"repro/internal/fec"
	"repro/internal/modem"
	"repro/internal/payload"
)

func main() {
	waveform := flag.String("waveform", "tdma", "uplink waveform: cdma or tdma")
	codec := flag.String("codec", "uncoded", "decoder: uncoded, conv-r1/2-k9, conv-r1/3-k9, turbo-r1/3")
	ebn0 := flag.Float64("ebn0", 6, "channel Eb/N0 in dB")
	packets := flag.Int("packets", 20, "packets to send")
	strategy := flag.String("partitioning", "per-equipment", "single-chip, per-equipment or per-function")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := payload.DefaultConfig()
	switch *strategy {
	case "single-chip":
		cfg.Strategy = payload.SingleChip
	case "per-equipment":
		cfg.Strategy = payload.PerEquipment
	case "per-function":
		cfg.Strategy = payload.PerFunction
	default:
		log.Fatalf("unknown partitioning %q", *strategy)
	}

	pl, err := payload.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mode := payload.ModeTDMA
	if *waveform == "cdma" {
		mode = payload.ModeCDMA
	}
	if err := pl.SetWaveform(mode); err != nil {
		log.Fatal(err)
	}
	if err := pl.SetCodec(*codec); err != nil {
		log.Fatal(err)
	}
	c, err := pl.Codec()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("payload: %s partitioning, waveform=%s codec=%s Eb/N0=%.1f dB\n",
		cfg.Strategy, pl.Mode(), c.Name(), *ebn0)

	// Per-packet info size and the codeword length the frame pipeline
	// should trim each burst to before decoding.
	infoLen := 128
	if mode == payload.ModeTDMA {
		infoLen = infoBitsFor(c, pl.BurstFormat().PayloadBits())
	}
	pl.SetBurstCodedBits(c.EncodedLen(infoLen))

	// Synthesize one burst per packet, then receive them frame by frame
	// (one burst per carrier) on the concurrent batch path.
	rng := rand.New(rand.NewSource(*seed))
	totalBits, errBits, lost := 0, 0, 0
	makeBurst := func(p int) (dsp.Vec, []byte) {
		info := randBits(rng, infoLen)
		coded := c.Encode(info)
		if mode == payload.ModeCDMA {
			if len(coded)%2 != 0 {
				coded = append(coded, 0)
			}
			mod := cdma.NewModulator(cfg.CDMA)
			rx := mod.Modulate(coded)
			ebn0lin := math.Pow(10, *ebn0/10) * c.Rate()
			n0 := float64(cfg.CDMA.SF) / (2 * ebn0lin)
			ch := dsp.NewChannel(*seed + int64(p))
			ch.AWGN(rx, n0)
			return rx, info
		}
		f := pl.BurstFormat()
		padded := make([]byte, f.PayloadBits())
		copy(padded, coded)
		mod := modem.NewBurstModulator(f, 0.35, 4, 10)
		rx := dsp.NewChannelWith(*seed+int64(p), *ebn0+10*math.Log10(2*c.Rate()), 4).Apply(mod.Modulate(padded))
		return rx, info
	}
	for base := 0; base < *packets; base += cfg.Carriers {
		n := cfg.Carriers
		if base+n > *packets {
			n = *packets - base
		}
		frame := make([]dsp.Vec, n)
		infos := make([][]byte, n)
		for i := range frame {
			frame[i], infos[i] = makeBurst(base + i)
		}
		dec, _ := pl.ProcessFrame(base/cfg.Carriers%4, frame)
		for i, d := range dec {
			if d == nil || len(d) < infoLen {
				lost++
				continue
			}
			errBits += fec.CountBitErrors(infos[i], d[:infoLen])
			totalBits += infoLen
		}
	}

	fmt.Printf("packets: %d sent, %d lost\n", *packets, lost)
	if totalBits > 0 {
		fmt.Printf("BER: %d/%d = %.3e\n", errBits, totalBits, float64(errBits)/float64(totalBits))
	}
	fmt.Printf("switch: %d packets routed across beams %v\n", pl.Switch().Routed(), pl.Switch().Beams())
}

func infoBitsFor(c fec.Codec, budget int) int {
	// Largest k with EncodedLen(k) <= budget, rounded to a byte-ish size.
	k := 16
	for c.EncodedLen(k+8) <= budget {
		k += 8
	}
	return k
}

func randBits(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(2))
	}
	return b
}
