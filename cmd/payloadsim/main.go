// Command payloadsim runs uplink traffic through the regenerative payload
// (Fig 2): modulate user data in the selected waveform, pass it through
// an AWGN channel, and let the payload demodulate, decode and switch it,
// printing the resulting error rates and switch statistics.
//
// Usage:
//
//	payloadsim -waveform tdma -codec conv-r1/2-k9 -ebn0 4 -packets 20
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/cdma"
	"repro/internal/dsp"
	"repro/internal/fec"
	"repro/internal/modem"
	"repro/internal/payload"
)

func main() {
	waveform := flag.String("waveform", "tdma", "uplink waveform: cdma or tdma")
	codec := flag.String("codec", "uncoded", "decoder: uncoded, conv-r1/2-k9, conv-r1/3-k9, turbo-r1/3")
	ebn0 := flag.Float64("ebn0", 6, "channel Eb/N0 in dB")
	packets := flag.Int("packets", 20, "packets to send")
	strategy := flag.String("partitioning", "per-equipment", "single-chip, per-equipment or per-function")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := payload.DefaultConfig()
	switch *strategy {
	case "single-chip":
		cfg.Strategy = payload.SingleChip
	case "per-equipment":
		cfg.Strategy = payload.PerEquipment
	case "per-function":
		cfg.Strategy = payload.PerFunction
	default:
		log.Fatalf("unknown partitioning %q", *strategy)
	}

	pl, err := payload.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mode := payload.ModeTDMA
	if *waveform == "cdma" {
		mode = payload.ModeCDMA
	}
	if err := pl.SetWaveform(mode); err != nil {
		log.Fatal(err)
	}
	if err := pl.SetCodec(*codec); err != nil {
		log.Fatal(err)
	}
	c, err := pl.Codec()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("payload: %s partitioning, waveform=%s codec=%s Eb/N0=%.1f dB\n",
		cfg.Strategy, pl.Mode(), c.Name(), *ebn0)

	rng := rand.New(rand.NewSource(*seed))
	totalBits, errBits, lost := 0, 0, 0
	for p := 0; p < *packets; p++ {
		var rx dsp.Vec
		var info []byte
		if mode == payload.ModeCDMA {
			// Size the info so the coded stream fills whole symbols.
			info = randBits(rng, 128)
			coded := c.Encode(info)
			if len(coded)%2 != 0 {
				coded = append(coded, 0)
			}
			mod := cdma.NewModulator(cfg.CDMA)
			rx = mod.Modulate(coded)
			ebn0lin := math.Pow(10, *ebn0/10) * c.Rate()
			n0 := float64(cfg.CDMA.SF) / (2 * ebn0lin)
			ch := dsp.NewChannel(*seed + int64(p))
			ch.AWGN(rx, n0)
		} else {
			f := pl.BurstFormat()
			k := infoBitsFor(c, f.PayloadBits())
			info = randBits(rng, k)
			coded := c.Encode(info)
			padded := make([]byte, f.PayloadBits())
			copy(padded, coded)
			mod := modem.NewBurstModulator(f, 0.35, 4, 10)
			rx = dsp.NewChannelWith(*seed+int64(p), *ebn0+10*math.Log10(2*c.Rate()), 4).Apply(mod.Modulate(padded))
		}
		soft, err := pl.DemodulateCarrier(p%cfg.Carriers, rx)
		if err != nil {
			lost++
			continue
		}
		need := c.EncodedLen(len(info))
		if len(soft) < need {
			lost++
			continue
		}
		dec, err := pl.Decode(soft[:need])
		if err != nil {
			lost++
			continue
		}
		errBits += fec.CountBitErrors(info, dec[:len(info)])
		totalBits += len(info)
		pl.Switch().Route(p%4, fec.PackBits(dec[:len(info)]))
	}

	fmt.Printf("packets: %d sent, %d lost\n", *packets, lost)
	if totalBits > 0 {
		fmt.Printf("BER: %d/%d = %.3e\n", errBits, totalBits, float64(errBits)/float64(totalBits))
	}
	fmt.Printf("switch: %d packets routed across beams %v\n", pl.Switch().Routed, pl.Switch().Beams())
}

func infoBitsFor(c fec.Codec, budget int) int {
	// Largest k with EncodedLen(k) <= budget, rounded to a byte-ish size.
	k := 16
	for c.EncodedLen(k+8) <= budget {
		k += 8
	}
	return k
}

func randBits(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(2))
	}
	return b
}
