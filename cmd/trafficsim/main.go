// Command trafficsim runs sustained MF-TDMA load through the full
// regenerative loop, driven by the declarative scenario runtime: a
// scenario spec (from -scenario file.json, a -preset name, or built
// from the flags) describes the system, the traffic shape, the terminal
// population with optional per-terminal channel impairments, and a
// frame-indexed event script (decoder swaps, waveform migrations, fade
// ramps, joins/leaves, queue changes) executed at frame boundaries
// through the live control plane. The run report covers throughput,
// latency, queue depths and losses; -verify additionally demodulates
// the transmitted downlink on a ground receiver and checks every bit.
//
// When a spec or preset is given, explicitly set flags are layered onto
// it as overrides (e.g. -preset swap-under-load -frames 20 truncates
// the run; population flags rebuild the terminal set).
//
// A long run is observable while it runs: -telemetry <file|-> streams
// one machine-readable flush line per -flush-every frames (cumulative
// counters, per-class stats, queue-depth gauges, per-stage engine
// timers with p50/p90/p99, Go runtime health) through the
// internal/telemetry backbone, and -report-json writes the end-of-run
// traffic.Report as JSON for campaign tooling.
//
// Usage:
//
//	trafficsim -list-presets
//	trafficsim -preset swap-under-load
//	trafficsim -preset qos-priority
//	trafficsim -scenario mission.json -frames 50
//	trafficsim -frames 100 -carriers 3 -slots 4 -codec conv-r1/2-k9 -verify
//	trafficsim -frames 40 -ebn0 6 -cfo 0.1 -timing-spread -phase-spread -verify
//	trafficsim -frames 40 -class mix -scheduler drr -drr-weights 4,2,1 -verify
//	trafficsim -preset impaired -frames 200 -telemetry - -flush-every 10
//	trafficsim -preset qos-priority -telemetry run.jsonl -report-json report.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

func main() {
	scenarioFile := flag.String("scenario", "", "run a scenario spec from a JSON file")
	preset := flag.String("preset", "", "run a registered preset scenario")
	listPresets := flag.Bool("list-presets", false, "list registered presets and exit")
	events := flag.Bool("events", true, "log scripted events as they fire")
	frames := flag.Int("frames", 100, "frames to run")
	carriers := flag.Int("carriers", 3, "MF-TDMA carriers (= downlink beams)")
	slots := flag.Int("slots", 4, "slots per carrier per frame")
	slotSymbols := flag.Int("slot-symbols", 320, "symbols per slot including guard")
	codec := flag.String("codec", "conv-r1/2-k9", "decoder: uncoded, conv-r1/2-k9, conv-r1/3-k9, turbo-r1/3")
	model := flag.String("model", "mix", "population model: cbr, onoff, hotspot or mix")
	terminals := flag.Int("terminals", 4, "terminal count")
	cells := flag.Int("cells", 1, "cells per frame a terminal demands (cbr/onoff/hotspot base)")
	count := flag.Int("count", 0, "lift each population entry to an aggregate of this many members spanning all beams (two-tier model)")
	tracers := flag.Int("tracers", 4, "members per aggregate population kept on the full per-terminal path (with -count)")
	queue := flag.Int("queue", 16, "per-(beam, class) downlink queue depth (packets)")
	policy := flag.String("policy", "drop-tail", "overload policy: drop-tail or backpressure")
	scheduler := flag.String("scheduler", "fifo", "downlink scheduler: fifo, strict or drr")
	beFloor := flag.Int("be-floor", 0, "best-effort slot floor per beam per frame (strict scheduler)")
	drrWeights := flag.String("drr-weights", "4,2,1", "DRR class weights as ef,af,be (drr scheduler)")
	class := flag.String("class", "", "traffic class for the built population: be, af, ef or mix (rotates ef/af/be)")
	ebn0 := flag.Float64("ebn0", 9, "uplink Eb/N0 in dB (0 = noiseless)")
	verify := flag.Bool("verify", false, "ground-demodulate the downlink and check every bit")
	seed := flag.Int64("seed", 1, "random seed")
	pipelineMode := flag.String("pipeline", "auto", "cross-frame pipelined stepping: auto (on when GOMAXPROCS>1), on or off")
	cfoMax := flag.Float64("cfo", 0, "spread per-terminal carrier frequency offsets across ±cfo cycles/symbol (acquisition range ±0.1)")
	drift := flag.Float64("drift", 0, "Doppler ramp on the last terminal, cycles/symbol per frame")
	timingSpread := flag.Bool("timing-spread", false, "spread per-terminal fractional timing offsets across [0, 1)")
	phaseSpread := flag.Bool("phase-spread", false, "spread per-terminal carrier phase offsets across (-pi, pi]")
	telemetryOut := flag.String("telemetry", "", "stream telemetry flush lines to a file (- for stdout)")
	flushEvery := flag.Int("flush-every", 10, "frames per telemetry flush (0 with -flush-interval for interval-only flushing)")
	flushInterval := flag.Duration("flush-interval", 0, "also flush when this much wall-clock time has passed (0 disables)")
	telemetryFormat := flag.String("telemetry-format", "json", "telemetry wire form: json or graphite")
	reportJSON := flag.String("report-json", "", "write the end-of-run report as JSON to a file")
	flag.Parse()

	if *listPresets {
		for _, n := range scenario.PresetNames() {
			fmt.Println(n)
		}
		return
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	spec, err := resolveSpec(*scenarioFile, *preset)
	if err != nil {
		log.Fatal(err)
	}
	fromFlags := *scenarioFile == "" && *preset == ""

	// Layer explicitly set flags (all of them, when no spec/preset was
	// given) onto the resolved spec.
	use := func(name string) bool { return fromFlags || set[name] }
	if use("frames") {
		spec.Frames = *frames
	}
	if use("carriers") {
		spec.Traffic.Carriers = *carriers
		spec.System.Carriers = 0 // follow the frame
	}
	if use("slots") {
		spec.Traffic.Slots = *slots
	}
	if use("slot-symbols") {
		spec.Traffic.SlotSymbols = *slotSymbols
	}
	if use("codec") {
		spec.System.Codec = *codec
	}
	if use("queue") {
		spec.Traffic.QueueDepth = *queue
	}
	if use("policy") {
		spec.Traffic.Policy = *policy
	}
	if use("ebn0") {
		spec.Traffic.EbN0dB = *ebn0
	}
	if use("verify") {
		spec.Traffic.Verify = *verify
	}
	if use("seed") {
		spec.Traffic.Seed = *seed
	}
	if use("pipeline") {
		spec.Traffic.Pipeline = *pipelineMode
	}
	// Population flags rebuild the terminal set; a bare -carriers
	// override keeps a preset's population (and its impairments) and
	// just remaps beams into the new downlink range. Impairment flags
	// re-sweep profiles over whatever population results.
	if fromFlags || set["model"] || set["terminals"] || set["cells"] {
		terms, err := scenario.PopulationSpec(*model, *terminals, *cells, spec.Traffic.Carriers)
		if err != nil {
			log.Fatal(err)
		}
		spec.Terminals = terms
	} else if set["carriers"] {
		for i := range spec.Terminals {
			spec.Terminals[i].Beam %= spec.Traffic.Carriers
		}
		for i := range spec.Events {
			if j := spec.Events[i].Join; j != nil {
				j.Beam %= spec.Traffic.Carriers
			}
		}
	}
	if fromFlags || set["cfo"] || set["drift"] || set["timing-spread"] || set["phase-spread"] {
		scenario.ImpairSpec(spec.Terminals, *cfoMax, *drift, *timingSpread, *phaseSpread)
	}
	// Scheduler flags build a declarative scheduler onto the spec; a
	// bare default keeps a preset's (e.g. qos-priority's strict+floor).
	// A parameter flag alone implies its scheduler, so -be-floor means
	// strict and -drr-weights means drr without restating -scheduler.
	if set["scheduler"] || set["be-floor"] || set["drr-weights"] {
		kind := *scheduler
		if !set["scheduler"] {
			if set["drr-weights"] {
				kind = "drr"
			} else {
				kind = "strict"
			}
		}
		ss := &scenario.SchedulerSpec{Kind: kind}
		switch kind {
		case "strict":
			ss.BEFloor = *beFloor
		case "drr":
			if _, err := fmt.Sscanf(*drrWeights, "%d,%d,%d", &ss.WeightEF, &ss.WeightAF, &ss.WeightBE); err != nil {
				log.Fatalf("trafficsim: -drr-weights %q: want ef,af,be integers", *drrWeights)
			}
		}
		spec.Traffic.Scheduler = ss
	}
	if set["class"] {
		for i := range spec.Terminals {
			c := *class
			if c == "mix" {
				c = []string{"ef", "af", "be"}[i%3]
			}
			spec.Terminals[i].Class = c
		}
	}
	// -count lifts every population entry to two-tier aggregate form:
	// each becomes a population of count members spanning all downlink
	// beams, with -tracers members kept on the full per-terminal path.
	if *count > 0 {
		allBeams := make([]int, spec.Traffic.Carriers)
		for i := range allBeams {
			allBeams[i] = i
		}
		tr := *tracers
		if tr > *count {
			tr = *count
		}
		for i := range spec.Terminals {
			spec.Terminals[i].Count = *count
			spec.Terminals[i].Tracers = tr
			spec.Terminals[i].Beams = allBeams
		}
	}
	// A truncated run must not strand scripted events past the horizon
	// in the banner; they simply never fire.
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}

	sysCfg := core.DefaultSystemConfig()
	if n := spec.System.Carriers; n > 0 {
		sysCfg.Payload.Carriers = n
	} else if spec.Traffic.Carriers > sysCfg.Payload.Carriers {
		sysCfg.Payload.Carriers = spec.Traffic.Carriers
	}
	if n := spec.System.PayloadSymbols; n > 0 {
		sysCfg.Payload.TDMAPayloadSymbols = n
	}
	sys, err := core.NewSystem(sysCfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.RunUntil(2)

	var opts []scenario.Option
	if *events {
		opts = append(opts, scenario.WithObserver(func(st scenario.FrameStats, _ func() *traffic.Report) {
			for _, rec := range st.Events {
				fmt.Println("event:", rec)
			}
		}))
	}
	sess, err := sys.NewSession(spec, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	var tel *scenario.TelemetryObserver
	var telFile *os.File
	if *telemetryOut != "" {
		w := os.Stdout
		if *telemetryOut != "-" {
			f, err := os.Create(*telemetryOut)
			if err != nil {
				log.Fatal(err)
			}
			telFile, w = f, f
		}
		format := telemetry.FormatJSON
		switch *telemetryFormat {
		case "json":
		case "graphite":
			format = telemetry.FormatGraphite
		default:
			log.Fatalf("trafficsim: unknown -telemetry-format %q (json or graphite)", *telemetryFormat)
		}
		tel = scenario.NewTelemetryObserver(w, scenario.TelemetryConfig{
			FlushEvery:    *flushEvery,
			FlushInterval: *flushInterval,
			Format:        format,
			Source:        "trafficsim",
		})
		tel.Attach(sess)
	}

	name := spec.Name
	if name == "" {
		name = "ad hoc"
	}
	members, traced := 0, 0
	for _, t := range spec.Terminals {
		if t.Count > 0 {
			members += t.Count
			traced += t.Tracers
		} else {
			members++
		}
	}
	popDesc := fmt.Sprintf("%d terminals", len(spec.Terminals))
	if members > len(spec.Terminals) {
		popDesc = fmt.Sprintf("%d entries / %d modeled members (%d traced)", len(spec.Terminals), members, traced)
	}
	stepping := "sequential"
	if sess.Pipelined() {
		stepping = "pipelined"
	}
	fmt.Printf("trafficsim: scenario %q, %d frames, %dx%d grid, codec=%s, %s, queue=%d (%s), Eb/N0=%.1f dB, %d scripted events, %s stepping\n",
		name, spec.Frames, spec.Traffic.Carriers, spec.Traffic.Slots, spec.System.Codec,
		popDesc, spec.Traffic.QueueDepth, spec.Traffic.Policy, spec.Traffic.EbN0dB, len(spec.Events), stepping)

	rep, err := sess.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if tel != nil {
		if err := tel.Close(); err != nil {
			log.Fatalf("trafficsim: telemetry stream: %v", err)
		}
		if telFile != nil {
			if err := telFile.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *reportJSON != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*reportJSON, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(rep)
}

// resolveSpec picks the base spec: a file, a preset, or the flag-built
// default shape (filled in by the override layer above).
func resolveSpec(file, preset string) (scenario.Spec, error) {
	switch {
	case file != "" && preset != "":
		return scenario.Spec{}, fmt.Errorf("use -scenario or -preset, not both")
	case file != "":
		return scenario.LoadFile(file)
	case preset != "":
		return scenario.Preset(preset)
	default:
		sp := scenario.Spec{
			Name:    "flags",
			Traffic: scenario.TrafficSpec{GuardSymbols: 16},
		}
		return sp, nil
	}
}
