// Command trafficsim runs sustained MF-TDMA load through the full
// regenerative loop: a deterministic terminal population issues DAMA
// capacity requests each frame, granted bursts are demodulated, decoded
// and switched on board, and the per-beam downlink queues drain into the
// concurrent transmit pipeline. The run report covers throughput,
// latency, queue depths and losses; -verify additionally demodulates the
// transmitted downlink on a ground receiver and checks every bit.
//
// Channel impairment flags attach a deterministic per-terminal
// ChannelProfile (CFO spread with the extremes pinned at ±cfo, timing
// offsets across [0, 1), phases across (-pi, pi], an optional Doppler
// ramp), which switches the payload onto the full burst synchronization
// chain; the report then includes per-terminal sync stats.
//
// Usage:
//
//	trafficsim -frames 100 -carriers 3 -slots 4 -codec conv-r1/2-k9 -verify
//	trafficsim -frames 40 -ebn0 6 -cfo 0.1 -timing-spread -phase-spread -verify
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/modem"
	"repro/internal/payload"
	"repro/internal/traffic"
)

func main() {
	frames := flag.Int("frames", 100, "frames to run")
	carriers := flag.Int("carriers", 3, "MF-TDMA carriers (= downlink beams)")
	slots := flag.Int("slots", 4, "slots per carrier per frame")
	slotSymbols := flag.Int("slot-symbols", 320, "symbols per slot including guard")
	codec := flag.String("codec", "conv-r1/2-k9", "decoder: uncoded, conv-r1/2-k9, conv-r1/3-k9, turbo-r1/3")
	model := flag.String("model", "mix", "population model: cbr, onoff, hotspot or mix")
	terminals := flag.Int("terminals", 4, "terminal count")
	cells := flag.Int("cells", 1, "cells per frame a terminal demands (cbr/onoff/hotspot base)")
	queue := flag.Int("queue", 16, "per-beam downlink queue depth (packets)")
	policy := flag.String("policy", "drop-tail", "overload policy: drop-tail or backpressure")
	ebn0 := flag.Float64("ebn0", 9, "uplink Eb/N0 in dB (0 = noiseless)")
	verify := flag.Bool("verify", false, "ground-demodulate the downlink and check every bit")
	seed := flag.Int64("seed", 1, "random seed")
	cfoMax := flag.Float64("cfo", 0, "spread per-terminal carrier frequency offsets across ±cfo cycles/symbol (acquisition range ±0.1)")
	drift := flag.Float64("drift", 0, "Doppler ramp on the last terminal, cycles/symbol per frame")
	timingSpread := flag.Bool("timing-spread", false, "spread per-terminal fractional timing offsets across [0, 1)")
	phaseSpread := flag.Bool("phase-spread", false, "spread per-terminal carrier phase offsets across (-pi, pi]")
	flag.Parse()

	sys, err := core.NewSystem(core.DefaultSystemConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys.RunUntil(2)
	if *carriers > sys.Payload.Config().Carriers {
		log.Fatalf("payload serves %d carriers", sys.Payload.Config().Carriers)
	}
	if err := sys.Payload.SetWaveform(payload.ModeTDMA); err != nil {
		log.Fatal(err)
	}
	if err := sys.Payload.SetCodec(*codec); err != nil {
		log.Fatal(err)
	}

	cfg := traffic.DefaultConfig()
	cfg.Frame = modem.FrameConfig{Carriers: *carriers, Slots: *slots, SlotSymbols: *slotSymbols, GuardSymbols: 16}
	cfg.QueueDepth = *queue
	cfg.EbN0dB = *ebn0
	cfg.Verify = *verify
	cfg.Seed = *seed
	switch *policy {
	case "drop-tail":
		cfg.Policy = traffic.DropTail
	case "backpressure":
		cfg.Policy = traffic.Backpressure
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	terms, err := population(*model, *terminals, *cells, *carriers)
	if err != nil {
		log.Fatal(err)
	}
	impair(terms, *cfoMax, *drift, *timingSpread, *phaseSpread)

	fmt.Printf("trafficsim: %d frames, %dx%d grid, codec=%s, %d terminals (%s), queue=%d (%s), Eb/N0=%.1f dB\n",
		*frames, *carriers, *slots, *codec, len(terms), *model, *queue, cfg.Policy, *ebn0)
	if *cfoMax != 0 || *drift != 0 || *timingSpread || *phaseSpread {
		fmt.Printf("impairments: CFO ±%.3f c/sym, drift %.4f c/sym/frame, timing spread %v, phase spread %v\n",
			*cfoMax, *drift, *timingSpread, *phaseSpread)
	}
	rep, err := sys.RunTraffic(core.TrafficScenario{Config: cfg, Terminals: terms, Frames: *frames})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
}

// population builds the deterministic terminal set, beams round-robin
// over the downlink carriers.
func population(model string, n, cells, beams int) ([]traffic.Terminal, error) {
	if n < 1 {
		return nil, fmt.Errorf("need at least one terminal")
	}
	out := make([]traffic.Terminal, n)
	for i := range out {
		var m traffic.Model
		switch model {
		case "cbr":
			m = traffic.CBR{Cells: cells}
		case "onoff":
			m = traffic.OnOff{On: 3, Off: 2, Cells: cells + 1, Phase: i}
		case "hotspot":
			m = traffic.Hotspot{Base: cells, Surge: 3 * cells, Period: 8, Width: 2}
		case "mix":
			switch i % 3 {
			case 0:
				m = traffic.CBR{Cells: cells}
			case 1:
				m = traffic.OnOff{On: 3, Off: 2, Cells: cells + 1, Phase: i}
			default:
				m = traffic.Hotspot{Base: cells, Surge: 3 * cells, Period: 8, Width: 2}
			}
		default:
			return nil, fmt.Errorf("unknown model %q", model)
		}
		out[i] = traffic.Terminal{ID: fmt.Sprintf("t%d", i), Beam: i % beams, Model: m}
	}
	return out, nil
}

// impair attaches deterministic channel profiles sweeping the requested
// impairments across the population: CFOs spread over ±cfoMax with the
// extremes pinned, timing offsets over [0, 1), phases over (-pi, pi],
// and the Doppler ramp on the last terminal. No flags set leaves the
// population on the ideal channel (and the payload on the legacy sync
// chain).
func impair(terms []traffic.Terminal, cfoMax, drift float64, timingSpread, phaseSpread bool) {
	if cfoMax == 0 && drift == 0 && !timingSpread && !phaseSpread {
		return
	}
	n := len(terms)
	for i := range terms {
		p := &traffic.ChannelProfile{CFO: cfoMax}
		if n > 1 {
			p.CFO = cfoMax * (2*float64(i)/float64(n-1) - 1)
		}
		if timingSpread {
			p.Timing = float64(i) / float64(n)
		}
		if phaseSpread {
			p.Phase = 2*math.Pi*float64(i+1)/float64(n) - math.Pi
		}
		if i == n-1 {
			p.Drift = drift
		}
		terms[i].Channel = p
	}
}
