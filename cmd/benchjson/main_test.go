package main

import (
	"strings"
	"testing"
)

func res(pkg, name string, width int, ns float64, b, allocs int64) Result {
	return Result{Package: pkg, Name: name, GOMAXPROCS: width,
		NsPerOp: ns, BytesPerOp: b, AllocsPerOp: allocs}
}

func TestPctDelta(t *testing.T) {
	cases := []struct {
		old, cur float64
		want     string
	}{
		{100, 150, "+50.0%"},
		{100, 80, "-20.0%"},
		{100, 100, "+0.0%"},
		{0, 50, "n/a"},
	}
	for _, c := range cases {
		if got := pctDelta(c.old, c.cur); got != c.want {
			t.Errorf("pctDelta(%v, %v) = %q, want %q", c.old, c.cur, got, c.want)
		}
	}
}

func TestDiffBaselineMatchesByPackageNameWidth(t *testing.T) {
	base := File{Results: []Result{
		res(".", "BenchmarkA", 1, 1000, 64, 2),
		res(".", "BenchmarkA", 4, 400, 64, 2),
		res(".", "BenchmarkGone", 1, 9, 0, 0),
	}}
	cur := File{Results: []Result{
		res(".", "BenchmarkA", 1, 800, 32, 1),
		res(".", "BenchmarkA", 4, 500, 64, 2),
		res(".", "BenchmarkNew", 1, 7, 0, 0),
	}}
	lines := diffBaseline(base, cur)
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[0], "-20.0%") {
		t.Errorf("width-1 delta line missing -20%%: %q", lines[0])
	}
	if !strings.Contains(lines[1], "+25.0%") {
		t.Errorf("width-4 delta line missing +25%%: %q", lines[1])
	}
	if !strings.Contains(lines[2], "new, no baseline") {
		t.Errorf("new-benchmark line wrong: %q", lines[2])
	}
	if !strings.Contains(lines[3], "1 baseline results had no current counterpart") {
		t.Errorf("dropped summary wrong: %q", lines[3])
	}
}

func TestDiffBaselineDistinguishesPackages(t *testing.T) {
	// The same benchmark name in two packages must not cross-match.
	base := File{Results: []Result{res("./a", "BenchmarkX", 1, 100, 0, 0)}}
	cur := File{Results: []Result{res("./b", "BenchmarkX", 1, 100, 0, 0)}}
	lines := diffBaseline(base, cur)
	if len(lines) != 2 || !strings.Contains(lines[0], "new, no baseline") {
		t.Fatalf("cross-package match leaked:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCheckVsGate(t *testing.T) {
	multi := File{Results: []Result{
		res(".", "BenchmarkSeq", 1, 1000, 0, 0),
		res(".", "BenchmarkSeq", 4, 960, 0, 0),
		res(".", "BenchmarkPipe", 1, 1010, 0, 0),
		res(".", "BenchmarkPipe", 4, 600, 0, 0),
	}}

	// 960/600 = 1.6x at the widest width: clears 1.0 and 1.5, not 1.7.
	if err := checkVsGate(multi, "BenchmarkPipe:BenchmarkSeq", 1.0); err != nil {
		t.Errorf("1.6x speedup failed min 1.0: %v", err)
	}
	if err := checkVsGate(multi, "BenchmarkPipe:BenchmarkSeq", 1.5); err != nil {
		t.Errorf("1.6x speedup failed min 1.5: %v", err)
	}
	if err := checkVsGate(multi, "BenchmarkPipe:BenchmarkSeq", 1.7); err == nil {
		t.Error("1.6x speedup cleared min 1.7")
	}

	// Width-1 figures must not leak into the comparison: the inverted
	// direction fails even though the challenger wins at width 1.
	if err := checkVsGate(multi, "BenchmarkSeq:BenchmarkPipe", 1.0); err == nil {
		t.Error("inverted gate passed; widest-width figures not used")
	}

	if err := checkVsGate(multi, "BenchmarkPipe", 1.0); err == nil {
		t.Error("spec without colon accepted")
	}
	if err := checkVsGate(multi, ":BenchmarkSeq", 1.0); err == nil {
		t.Error("empty challenger accepted")
	}
	if err := checkVsGate(multi, "BenchmarkPipe:BenchmarkMissing", 1.0); err == nil {
		t.Error("missing baseline benchmark accepted")
	}

	// A single-width sweep (1-core host) has nothing to compare: pass.
	single := File{Results: []Result{
		res(".", "BenchmarkSeq", 1, 1000, 0, 0),
		res(".", "BenchmarkPipe", 1, 1010, 0, 0),
	}}
	if err := checkVsGate(single, "BenchmarkPipe:BenchmarkSeq", 1.2); err != nil {
		t.Errorf("single-width sweep should pass with a note: %v", err)
	}

	// The same benchmark name in two packages at the widest width is
	// ambiguous, not silently first-match.
	ambig := File{Results: []Result{
		res("./a", "BenchmarkPipe", 2, 500, 0, 0),
		res("./b", "BenchmarkPipe", 2, 700, 0, 0),
		res(".", "BenchmarkSeq", 2, 1000, 0, 0),
	}}
	if err := checkVsGate(ambig, "BenchmarkPipe:BenchmarkSeq", 1.0); err == nil {
		t.Error("ambiguous challenger accepted")
	}
}

func TestBenchLineParsing(t *testing.T) {
	m := benchLine.FindStringSubmatch("BenchmarkTrafficEnginePipelined-8   	      85	  13580000 ns/op	 1234 B/op	  56 allocs/op")
	if m == nil {
		t.Fatal("bench line did not parse")
	}
	if m[1] != "BenchmarkTrafficEnginePipelined" || m[3] != "13580000" {
		t.Fatalf("parsed %q ns/op %q", m[1], m[3])
	}
}
