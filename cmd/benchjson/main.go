// Command benchjson runs the repo's performance benchmarks and writes
// the results as machine-readable JSON (ns/op, B/op, allocs/op), so the
// perf trajectory of the pipeline and traffic-engine hot paths can be
// tracked across PRs instead of living in commit messages. The default
// set covers the receive/transmit pipelines, the clean traffic engine
// and its impaired twin (the burst-sync-chain overhead is the delta
// between the two), the scenario-session presets riding the same
// populations (the session-layer overhead is the delta to the raw
// engine benches), the switching fabric (sharded vs single-lock
// routing under concurrent workers, plus the per-scheduler slot-fill
// cost whose 0 B/op column pins the allocation-free fill path), the
// fast-convolution core (FFT plan sizes, overlap-save vs scalar FIR
// across the crossover), and the Monte Carlo campaign fleet (an N-run
// campaign sequential vs across the worker pool — the conc/seq ratio
// prices the fleet scale-out).
//
// Each benchmark set runs once per GOMAXPROCS width — 1 (the
// single-core figure PR acceptance gates compare) and NumCPU (the
// pipeline-scaling figure) — and every result records the width it ran
// at. CI runs the 1x smoke variant on every push; full runs use the go
// test defaults:
//
//	go run ./cmd/benchjson -out BENCH_PR10.json
//	go run ./cmd/benchjson -benchtime 1x -out BENCH_PR10.json   # smoke
//	go run ./cmd/benchjson -bench BenchmarkTrafficEngineMegapop \
//	    -speedup-gate Megapop -min-speedup 0.95                # concurrency gate
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// Result is one benchmark measurement at one GOMAXPROCS width.
type Result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// File is the BENCH_PRn.json layout. The header makes the artifact
// self-identifying: generation timestamp, Go version and the git commit
// the numbers were measured at (empty outside a git checkout). NumCPU
// records the host width the widest sweep entry ran at; per-result
// widths live on each Result.
type File struct {
	Generated string   `json:"generated"`
	GoVersion string   `json:"go_version"`
	GitCommit string   `json:"git_commit,omitempty"`
	NumCPU    int      `json:"num_cpu"`
	Widths    []int    `json:"gomaxprocs_widths"`
	Pattern   string   `json:"pattern"`
	Benchtime string   `json:"benchtime,omitempty"`
	Results   []Result `json:"results"`
}

// gitCommit best-effort resolves the working tree's HEAD (with a
// "-dirty" suffix when the tree has local modifications); a run outside
// a git checkout just leaves the field empty.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	commit := strings.TrimSpace(string(out))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(bytes.TrimSpace(status)) > 0 {
		commit += "-dirty"
	}
	return commit
}

// benchLine matches `BenchmarkName-8  100  12345 ns/op  67 B/op  8 allocs/op`
// (the -benchmem columns are optional for benchmarks that disable them).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	pattern := flag.String("bench", "BenchmarkProcessFrame|BenchmarkTransmitFrameGrid|BenchmarkTrafficEngine|BenchmarkScenarioSession|BenchmarkSwitchFabric|BenchmarkSchedulerFill|BenchmarkFFT|BenchmarkFastFIRvsScalar|ProcessInto|BenchmarkE10|BenchmarkCampaign",
		"benchmark regexp (the pipeline + traffic + scenario + switch-fabric + fast-convolution + campaign set by default)")
	benchtime := flag.String("benchtime", "", "go test -benchtime value (e.g. 1x for a smoke run)")
	pkgs := flag.String("pkgs", ".,./internal/dsp", "comma-separated packages to bench")
	widthsFlag := flag.String("gomaxprocs", "", "comma-separated GOMAXPROCS widths (default: 1 and NumCPU)")
	out := flag.String("out", "BENCH_PR10.json", "output file")
	telemetryOut := flag.String("telemetry", "", "additionally emit the results as one telemetry flush line (file, or - for stdout)")
	speedupGate := flag.String("speedup-gate", "", "benchmark name regexp whose widest-width speedup over width 1 must clear -min-speedup")
	minSpeedup := flag.Float64("min-speedup", 1.0, "minimum (ns/op at width 1) / (ns/op at widest width) ratio for -speedup-gate benchmarks")
	baseline := flag.String("baseline", "", "print per-benchmark ns/op, B/op, allocs/op deltas against a previously recorded BENCH_PRn.json")
	vsGate := flag.String("vs-gate", "", "CHALLENGER:BASELINE benchmark-name pair; at the widest width ns/op(BASELINE)/ns/op(CHALLENGER) must clear -min-vs")
	minVs := flag.Float64("min-vs", 1.0, "minimum baseline/challenger speedup for -vs-gate")
	flag.Parse()

	widths, err := parseWidths(*widthsFlag)
	if err != nil {
		log.Fatal(err)
	}
	file := File{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GitCommit: gitCommit(),
		NumCPU:    runtime.NumCPU(),
		Widths:    widths,
		Pattern:   *pattern,
		Benchtime: *benchtime,
	}
	for _, w := range widths {
		for _, pkg := range strings.Split(*pkgs, ",") {
			pkg = strings.TrimSpace(pkg)
			if pkg == "" {
				continue
			}
			res, err := runPackage(pkg, *pattern, *benchtime, w)
			if err != nil {
				log.Fatalf("%s (GOMAXPROCS=%d): %v", pkg, w, err)
			}
			file.Results = append(file.Results, res...)
		}
	}
	if len(file.Results) == 0 {
		log.Fatalf("no benchmarks matched %q in %s", *pattern, *pkgs)
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	if *telemetryOut != "" {
		if err := emitTelemetry(*telemetryOut, file); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d results to %s\n", len(file.Results), *out)
	if *baseline != "" {
		if err := printBaseline(*baseline, file); err != nil {
			log.Fatal(err)
		}
	}
	if *speedupGate != "" {
		if err := checkSpeedup(file, *speedupGate, *minSpeedup); err != nil {
			log.Fatal(err)
		}
	}
	if *vsGate != "" {
		if err := checkVsGate(file, *vsGate, *minVs); err != nil {
			log.Fatal(err)
		}
	}
}

// printBaseline loads a previously recorded artifact and prints the
// per-benchmark deltas computed by diffBaseline — the first cross-PR
// perf-trajectory view over the checked-in BENCH_PRn.json files.
func printBaseline(path string, cur File) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	var base File
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("-baseline %s: %w", path, err)
	}
	label := base.GitCommit
	if label == "" {
		label = path
	}
	fmt.Printf("baseline: %s (%d results, generated %s)\n", label, len(base.Results), base.Generated)
	for _, line := range diffBaseline(base, cur) {
		fmt.Println(line)
	}
	return nil
}

// diffBaseline compares the current results against a baseline file,
// one line per (package, name, width) present in both (ns/op with the
// percentage change, B/op and allocs/op side by side); benchmarks only
// one side knows are summarized, not errors — suites grow across PRs.
func diffBaseline(base, cur File) []string {
	type key struct {
		pkg, name string
		width     int
	}
	baseBy := make(map[key]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[key{r.Package, r.Name, r.GOMAXPROCS}] = r
	}
	var lines []string
	matched := map[key]bool{}
	for _, r := range cur.Results {
		k := key{r.Package, r.Name, r.GOMAXPROCS}
		b, ok := baseBy[k]
		if !ok {
			lines = append(lines, fmt.Sprintf("  %-44s p%-2d (new, no baseline)", r.Name, r.GOMAXPROCS))
			continue
		}
		matched[k] = true
		lines = append(lines, fmt.Sprintf("  %-44s p%-2d ns/op %12.0f -> %12.0f (%s)  B/op %9d -> %9d  allocs %6d -> %6d",
			r.Name, r.GOMAXPROCS, b.NsPerOp, r.NsPerOp, pctDelta(b.NsPerOp, r.NsPerOp),
			b.BytesPerOp, r.BytesPerOp, b.AllocsPerOp, r.AllocsPerOp))
	}
	dropped := 0
	for _, r := range base.Results {
		if !matched[key{r.Package, r.Name, r.GOMAXPROCS}] {
			dropped++
		}
	}
	if dropped > 0 {
		lines = append(lines, fmt.Sprintf("  (%d baseline results had no current counterpart)", dropped))
	}
	return lines
}

// pctDelta renders the old→new relative change; a zero or missing old
// figure has no meaningful percentage.
func pctDelta(old, cur float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (cur-old)/old*100)
}

// checkVsGate enforces a cross-benchmark gate at the widest measured
// width: for "CHALLENGER:BASELINE" (exact benchmark names), the
// baseline's ns/op divided by the challenger's must clear min — how CI
// asserts the pipelined engine step beats (or at least matches) the
// sequential one at GOMAXPROCS=NumCPU. A single-width sweep on a
// 1-core host has no parallelism for the challenger to win with and
// passes with a note, mirroring checkSpeedup.
func checkVsGate(file File, spec string, min float64) error {
	chal, base, ok := strings.Cut(spec, ":")
	if !ok || chal == "" || base == "" {
		return fmt.Errorf("bad -vs-gate %q, want CHALLENGER:BASELINE", spec)
	}
	widest := 0
	for _, r := range file.Results {
		if r.GOMAXPROCS > widest {
			widest = r.GOMAXPROCS
		}
	}
	if widest <= 1 {
		fmt.Printf("vs gate: single width %d, nothing to compare\n", widest)
		return nil
	}
	lookup := func(name string) (float64, error) {
		var ns float64
		found := false
		for _, r := range file.Results {
			if r.Name != name || r.GOMAXPROCS != widest {
				continue
			}
			if found {
				return 0, fmt.Errorf("vs gate: benchmark %s is ambiguous at width %d (multiple packages)", name, widest)
			}
			ns, found = r.NsPerOp, true
		}
		if !found {
			return 0, fmt.Errorf("vs gate: benchmark %s has no result at width %d", name, widest)
		}
		return ns, nil
	}
	chalNs, err := lookup(chal)
	if err != nil {
		return err
	}
	baseNs, err := lookup(base)
	if err != nil {
		return err
	}
	if chalNs == 0 {
		return fmt.Errorf("vs gate: %s measured 0 ns/op at width %d", chal, widest)
	}
	speedup := baseNs / chalNs
	fmt.Printf("vs gate: %s vs %s at GOMAXPROCS=%d = %.2fx (min %.2f)\n", chal, base, widest, speedup, min)
	if speedup < min {
		return fmt.Errorf("vs gate: %s at GOMAXPROCS=%d is %.2fx the %s rate, below the %.2f floor", chal, widest, speedup, base, min)
	}
	return nil
}

// checkSpeedup enforces the concurrency acceptance gate: for every
// benchmark matching the pattern, the widest-width run must be no
// slower than min× the width-1 run (min-speedup 0.95 tolerates 5%
// noise; anything lower means the sharded path regressed below
// sequential). A single-width sweep — e.g. a 1-core host — has nothing
// to compare and passes with a note.
func checkSpeedup(file File, pattern string, min float64) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("bad -speedup-gate %q: %w", pattern, err)
	}
	// ns/op per (package, name) keyed by width.
	type key struct{ pkg, name string }
	perf := map[key]map[int]float64{}
	lo, hi := 0, 0
	for _, r := range file.Results {
		if !re.MatchString(r.Name) {
			continue
		}
		k := key{r.Package, r.Name}
		if perf[k] == nil {
			perf[k] = map[int]float64{}
		}
		perf[k][r.GOMAXPROCS] = r.NsPerOp
		if lo == 0 || r.GOMAXPROCS < lo {
			lo = r.GOMAXPROCS
		}
		if r.GOMAXPROCS > hi {
			hi = r.GOMAXPROCS
		}
	}
	if len(perf) == 0 {
		return fmt.Errorf("no benchmarks matched -speedup-gate %q", pattern)
	}
	if lo == hi {
		fmt.Printf("speedup gate: single width %d, nothing to compare\n", lo)
		return nil
	}
	for k, byWidth := range perf {
		seq, okSeq := byWidth[lo]
		par, okPar := byWidth[hi]
		if !okSeq || !okPar || par == 0 {
			return fmt.Errorf("speedup gate: %s %s missing a width (have %v)", k.pkg, k.name, byWidth)
		}
		speedup := seq / par
		fmt.Printf("speedup gate: %s %dx/%dx = %.2f (min %.2f)\n", k.name, hi, lo, speedup, min)
		if speedup < min {
			return fmt.Errorf("speedup gate: %s at GOMAXPROCS=%d is %.2fx the width-1 rate, below the %.2f floor", k.name, hi, speedup, min)
		}
	}
	return nil
}

// emitTelemetry reduces the benchmark results to one flush line in the
// streaming-telemetry schema (internal/telemetry.Line), so the bench
// trajectory and a live trafficsim feed share one consumer: each result
// becomes three gauges keyed
// bench.<name>.p<gomaxprocs>.{ns_per_op,bytes_per_op,allocs_per_op}.
func emitTelemetry(path string, file File) error {
	reg := telemetry.NewRegistry()
	for _, r := range file.Results {
		key := fmt.Sprintf("bench.%s.p%d.", strings.TrimPrefix(r.Name, "Benchmark"), r.GOMAXPROCS)
		reg.Gauge(key + "ns_per_op").Set(r.NsPerOp)
		reg.Gauge(key + "bytes_per_op").Set(float64(r.BytesPerOp))
		reg.Gauge(key + "allocs_per_op").Set(float64(r.AllocsPerOp))
	}
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	source := "benchjson"
	if file.GitCommit != "" {
		source = "benchjson@" + file.GitCommit
	}
	// Benchmarks have no frame clock; the line is tagged frame -1.
	return telemetry.NewFlusher(reg, w, telemetry.WithSource(source)).Flush(-1)
}

// parseWidths resolves the -gomaxprocs flag: explicit comma-separated
// widths, or the default {1, NumCPU} sweep (collapsed to {1} on a
// single-core host, where the two widths are the same measurement).
func parseWidths(s string) ([]int, error) {
	if s == "" {
		if n := runtime.NumCPU(); n > 1 {
			return []int{1, n}, nil
		}
		return []int{1}, nil
	}
	var widths []int
	for _, f := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -gomaxprocs entry %q", f)
		}
		widths = append(widths, w)
	}
	return widths, nil
}

// runPackage benches one package at the given GOMAXPROCS width and
// parses the text output.
func runPackage(pkg, pattern, benchtime string, gomaxprocs int) ([]Result, error) {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), fmt.Sprintf("GOMAXPROCS=%d", gomaxprocs))
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, buf.String())
	}
	var out []Result
	for _, line := range strings.Split(buf.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		r := Result{Package: pkg, Name: m[1], GOMAXPROCS: gomaxprocs}
		r.Iterations, _ = strconv.Atoi(m[2])
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		out = append(out, r)
	}
	return out, nil
}
