// Command experiments regenerates every table and figure of the paper's
// evaluation (see the experiment index in DESIGN.md) and prints them in
// paper-shaped form.
//
// Usage:
//
//	experiments [-quick] [-only E3]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/gates"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sample sizes (~10s total)")
	only := flag.String("only", "", "run a single experiment (E1..E13, ablations)")
	flag.Parse()

	run := func(id string) bool {
		return *only == "" || strings.EqualFold(*only, id)
	}
	out := os.Stdout

	// Sample sizes.
	deviceDays := 20000.0
	berBits := 60000
	e6Trials := 5_000_000
	campaign := 250
	if *quick {
		deviceDays, berBits, e6Trials, campaign = 2000, 6000, 500_000, 80
	}

	if run("E1") {
		experiments.E1Table1(deviceDays, 1).Print(out)
	}
	if run("E2") {
		experiments.E2Complexity(8).Print(out)
		fmt.Fprintln(out, gates.TDMATimingRecovery(6).Report())
		fmt.Fprintln(out, gates.CDMADemodulator(1).Report())
	}
	if run("E3") {
		res := experiments.E3Migration([]float64{2, 4, 6, 8}, berBits, 42)
		res.Table.Print(out)
		fmt.Fprintf(out, "   max implementation loss vs theory: %.2f dB\n\n", res.MaxDegradationdB)
	}
	if run("E4") {
		experiments.E4Timeline(3).Table.Print(out)
	}
	if run("E5") {
		sizes := []int{4 * 1024, 64 * 1024, 512 * 1024}
		if *quick {
			sizes = []int{4 * 1024, 64 * 1024}
		}
		experiments.E5Protocols(sizes, 4).Print(out)
	}
	if run("E6") {
		experiments.E6Mitigation(e6Trials, 0.01, campaign, 5).Table.Print(out)
		experiments.E6ScrubbingSweep(campaign, []int{0, 8, 4, 2, 1}, 6).Print(out)
	}
	if run("E7") {
		experiments.E7Partitioning(7).Table.Print(out)
	}
	if run("E8") {
		pts := []float64{1, 2, 3, 4}
		res := experiments.E8Decoders(pts, berBits, 8)
		res.Table.Print(out)
	}
	if run("E9") {
		experiments.E9Power().Print(out)
		experiments.E6PayloadAvailabilityComparison(campaign, 9).Print(out)
	}
	if run("E10") {
		frames := 20
		if *quick {
			frames = 5
		}
		experiments.E10Pipeline([]int{1, 2, 4, 8}, frames, 11).Table.Print(out)
	}
	if run("E11") {
		cfg := experiments.DefaultE11Config()
		if *quick {
			cfg.Frames = 20
		}
		res := experiments.E11Traffic(cfg)
		res.Table.Print(out)
		if !res.BitExact || !res.SwapOK {
			fmt.Fprintf(out, "   E11 FAILED: bitExact=%v swapOK=%v\n", res.BitExact, res.SwapOK)
			os.Exit(1)
		}
	}
	if run("E12") {
		cfg := experiments.DefaultE12Config()
		if *quick {
			cfg.Frames = 10
			cfg.EbN0dB = []float64{6, 9}
		}
		res := experiments.E12Impairments(cfg)
		res.Table.Print(out)
		if !res.ZeroErrors || !res.AcqOK {
			fmt.Fprintf(out, "   E12 FAILED: zeroErrors=%v acqOK=%v\n", res.ZeroErrors, res.AcqOK)
			os.Exit(1)
		}
	}
	if run("E13") {
		cfg := experiments.DefaultE13Config()
		if *quick {
			cfg.Frames = 16
		}
		res := experiments.E13QoS(cfg)
		res.Table.Print(out)
		if !res.BitExact || !res.EFProtected || !res.OverloadAbsorbed {
			fmt.Fprintf(out, "   E13 FAILED: bitExact=%v efProtected=%v overloadAbsorbed=%v\n",
				res.BitExact, res.EFProtected, res.OverloadAbsorbed)
			os.Exit(1)
		}
	}
	if run("ablations") {
		bursts := 40
		frames := 10
		if *quick {
			bursts = 10
			frames = 4
		}
		experiments.AblationTiming([]int{64, 256, 1024}, bursts, 10, 3).Print(out)
		experiments.AblationScrubbers(campaign, 4).Print(out)
		experiments.AblationTCModes(5).Print(out)
		experiments.AblationPipelineWorkers([]int{1, 2, 4, 8}, 6, frames, 12).Print(out)
		experiments.AblationTxWorkers([]int{1, 2, 4, 8}, frames, 13).Print(out)
	}
}
