// Command fleet runs a Monte Carlo campaign: a base scenario crossed
// with a parameter grid and a seed sweep, executed concurrently over a
// bounded worker pool, reduced into per-grid-point distribution
// statistics with declarative pass/fail gates, and written as one
// machine-readable CAMPAIGN_*.json artifact with git/seed/grid
// provenance.
//
// The campaign comes from -campaign <spec.json> (the JSON schema
// internal/campaign documents) or -preset <name> (the built-in
// registry; -list-presets enumerates it). -frames, -runs and -seed
// override the spec — the CI smoke path runs the golden ebn0-sweep at
// reduced frames with -runs 2. -telemetry streams a flush line every
// -flush-every finished runs (counters for completed/failed runs, a
// wall-clock timer over per-run durations) in the same wire form the
// scenario runtime emits, so the campaign is observable while it runs.
//
// Ctrl-C stops cleanly: in-flight sessions halt at their next frame
// boundary and the artifact is still written, marked cancelled and
// holding completed runs only. The exit status is 0 only when every
// run completed and every gate passed.
//
// Usage:
//
//	fleet -preset ebn0-sweep -workers 4
//	fleet -campaign sweep.json -out CAMPAIGN_sweep.json -telemetry - -flush-every 4
//	fleet -preset ebn0-sweep -frames 4 -runs 2 -workers 2   # CI smoke shape
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleet: ")

	campaignFile := flag.String("campaign", "", "campaign spec file (JSON)")
	preset := flag.String("preset", "", "built-in campaign preset name")
	listPresets := flag.Bool("list-presets", false, "list built-in campaign presets and exit")
	workers := flag.Int("workers", pipeline.Workers(), "concurrent sessions (default GOMAXPROCS)")
	frames := flag.Int("frames", 0, "override the campaign's frame count (0 keeps the spec)")
	runs := flag.Int("runs", 0, "override runs per grid point (0 keeps the spec)")
	seed := flag.Int64("seed", 0, "override the campaign master seed (0 keeps the spec)")
	out := flag.String("out", "", "artifact path (default CAMPAIGN_<name>.json)")
	telemetryOut := flag.String("telemetry", "", "stream telemetry flush lines to a file (- for stdout)")
	flushEvery := flag.Int("flush-every", 8, "finished runs per telemetry flush")
	pipelineMode := flag.String("pipeline", "", "cross-frame pipelined stepping for every run: auto, on or off (empty keeps each run's spec)")
	flag.Parse()

	if *listPresets {
		for _, name := range campaign.PresetNames() {
			sp, err := campaign.Preset(name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-16s %s\n", name, sp.Description)
		}
		return
	}

	var sp campaign.Spec
	switch {
	case *campaignFile != "" && *preset != "":
		log.Fatal("use -campaign or -preset, not both")
	case *campaignFile != "":
		loaded, err := campaign.LoadFile(*campaignFile)
		if err != nil {
			log.Fatal(err)
		}
		sp = *loaded
	case *preset != "":
		loaded, err := campaign.Preset(*preset)
		if err != nil {
			log.Fatal(err)
		}
		sp = loaded
	default:
		log.Fatal("need -campaign <spec.json> or -preset <name> (see -list-presets)")
	}
	if *frames > 0 {
		sp.Frames = *frames
	}
	if *runs > 0 {
		sp.RunsPerPoint = *runs
	}
	if *seed != 0 {
		sp.Seed = *seed
	}
	if err := sp.Validate(); err != nil {
		log.Fatal(err)
	}

	// Campaign telemetry: cumulative run counters and a wall-clock
	// per-run timer, flushed every -flush-every finished runs with the
	// finished-run count as the frame tag.
	var flusher *telemetry.Flusher
	var telFile *os.File
	var reg *telemetry.Registry
	if *telemetryOut != "" {
		w := os.Stdout
		if *telemetryOut != "-" {
			f, err := os.Create(*telemetryOut)
			if err != nil {
				log.Fatal(err)
			}
			telFile, w = f, f
		}
		reg = telemetry.NewRegistry()
		reg.Counter("campaign.runs_completed")
		reg.Counter("campaign.runs_failed")
		reg.Counter("campaign.runs_cancelled")
		reg.Timer("campaign.run_ns")
		flusher = telemetry.NewFlusher(reg, w, telemetry.WithSource("fleet"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var sessOpts []scenario.Option
	if *pipelineMode != "" {
		mode, err := scenario.ParsePipelineMode(*pipelineMode)
		if err != nil {
			log.Fatal(err)
		}
		sessOpts = append(sessOpts, scenario.WithPipeline(mode))
	}

	finished := 0
	cfg := campaign.Config{
		Workers:        *workers,
		SessionOptions: sessOpts,
		OnRun: func(o campaign.RunOutcome) {
			if reg == nil {
				return
			}
			finished++
			switch {
			case o.Cancelled:
				reg.Counter("campaign.runs_cancelled").Inc()
			case o.Err != nil:
				reg.Counter("campaign.runs_failed").Inc()
			default:
				reg.Counter("campaign.runs_completed").Inc()
				reg.Timer("campaign.run_ns").Observe(float64(o.Duration.Nanoseconds()))
			}
			if *flushEvery > 0 && finished%*flushEvery == 0 {
				if err := flusher.Flush(int64(finished)); err != nil {
					log.Fatalf("telemetry flush: %v", err)
				}
			}
		},
	}

	fmt.Printf("fleet: campaign %q, base %s, seed %d, %d point(s) × %d runs, %d workers\n",
		sp.Name, baseName(&sp), sp.Seed, gridSize(&sp), sp.RunsPerPoint, *workers)

	art, err := campaign.Execute(ctx, &sp, cfg)
	if err != nil {
		log.Fatal(err)
	}
	art.Provenance = campaign.NewProvenance()

	if flusher != nil {
		// Final flush so the stream always ends on the complete totals.
		if err := flusher.Flush(int64(finished)); err != nil {
			log.Fatalf("telemetry flush: %v", err)
		}
		if telFile != nil {
			if err := telFile.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}

	path := *out
	if path == "" {
		path = "CAMPAIGN_" + sp.Name + ".json"
	}
	data, err := art.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}

	for _, pt := range art.Points {
		status := "pass"
		if pt.Runs == 0 {
			status = "empty"
		} else if !pt.Passed {
			status = "FAIL"
		}
		line := fmt.Sprintf("fleet: point %-24s runs=%d %s", pt.Label, pt.Runs, status)
		if s, ok := pt.Stats["ber"]; ok {
			line += fmt.Sprintf("  ber max=%.3g p90=%.3g", s.Max, s.P90)
		}
		if s, ok := pt.Stats["goodput"]; ok {
			line += fmt.Sprintf("  goodput min=%.4g", s.Min)
		}
		fmt.Println(line)
	}
	fmt.Printf("fleet: %d/%d runs completed (%d failed), cancelled=%v, gates passed=%v -> %s\n",
		art.CompletedRuns, art.TotalRuns, art.FailedRuns, art.Cancelled, art.GatesPassed, path)

	if art.FailedRuns > 0 || !art.GatesPassed || art.Cancelled {
		os.Exit(1)
	}
}

// baseName names the campaign's base for the banner.
func baseName(sp *campaign.Spec) string {
	if sp.BasePreset != "" {
		return "preset " + sp.BasePreset
	}
	return "inline spec"
}

// gridSize is the expanded grid-point count.
func gridSize(sp *campaign.Spec) int {
	n := 1
	for _, ax := range sp.Axes {
		n *= len(ax.Values)
	}
	return n
}
