// Command tlmcheck validates a streaming-telemetry feed — the JSONL
// flush lines trafficsim -telemetry (and benchjson -telemetry) emit —
// against the schema contract, and optionally reconciles its cumulative
// counters against an end-of-run report. CI runs it over every scenario
// preset's smoke run, so a schema drift or a counter that diverges from
// the authoritative traffic.Report fails the build, not a dashboard
// three weeks later.
//
// Checks:
//   - every line parses as a telemetry.Line with no unknown fields
//   - seq increments from 0 with no gaps; frame tags never decrease
//   - counters are non-negative and never decrease across flushes
//     (cumulative contract), and keys never disappear (persistence)
//   - timer stats are internally consistent (count ≥ 0; when count > 0:
//     min ≤ mean ≤ max and min ≤ p50 ≤ p90 ≤ p99 ≤ max)
//   - with -report report.json: the final line's cumulative counters
//     equal the report exactly, top-level and per traffic class
//   - with -campaign CAMPAIGN_*.json: the campaign artifact replays
//     through campaign.ValidateArtifact — structural counts, derived
//     seeds, per-point statistics recomputed from the raw rows, gate
//     verdicts — after a strict (unknown-field-rejecting) decode
//
// Usage:
//
//	trafficsim -preset impaired -frames 4 -telemetry tl.jsonl -report-json rep.json
//	tlmcheck -telemetry tl.jsonl -report rep.json
//	fleet -preset ebn0-sweep -out CAMPAIGN_ebn0-sweep.json
//	tlmcheck -campaign CAMPAIGN_ebn0-sweep.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/campaign"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

func main() {
	telemetryIn := flag.String("telemetry", "", "telemetry JSONL feed to validate")
	reportIn := flag.String("report", "", "end-of-run report JSON to reconcile the final counters against")
	campaignIn := flag.String("campaign", "", "CAMPAIGN_*.json artifact to validate instead of (or alongside) a telemetry feed")
	flag.Parse()
	if *telemetryIn == "" && *campaignIn == "" {
		log.Fatal("tlmcheck: -telemetry or -campaign is required")
	}

	if *campaignIn != "" {
		art, err := loadArtifact(*campaignIn)
		if err != nil {
			log.Fatal(err)
		}
		if err := campaign.ValidateArtifact(art); err != nil {
			log.Fatalf("tlmcheck: %s: %v", *campaignIn, err)
		}
		fmt.Printf("tlmcheck: %s ok (%d/%d runs, %d points, gates passed=%v)\n",
			*campaignIn, art.CompletedRuns, art.TotalRuns, len(art.Points), art.GatesPassed)
	}
	if *telemetryIn == "" {
		return
	}

	lines, err := loadLines(*telemetryIn)
	if err != nil {
		log.Fatal(err)
	}
	if len(lines) == 0 {
		log.Fatalf("tlmcheck: %s carries no flush lines", *telemetryIn)
	}
	if err := validate(lines); err != nil {
		log.Fatalf("tlmcheck: %s: %v", *telemetryIn, err)
	}
	if *reportIn != "" {
		rep, err := loadReport(*reportIn)
		if err != nil {
			log.Fatal(err)
		}
		if err := reconcile(lines[len(lines)-1], rep); err != nil {
			log.Fatalf("tlmcheck: final flush vs %s: %v", *reportIn, err)
		}
	}
	fmt.Printf("tlmcheck: %s ok (%d flush lines)\n", *telemetryIn, len(lines))
}

func loadLines(path string) ([]telemetry.Line, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []telemetry.Line
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		var ln telemetry.Line
		if err := dec.Decode(&ln); err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, len(lines)+1, err)
		}
		lines = append(lines, ln)
	}
	return lines, sc.Err()
}

// loadArtifact reads a campaign artifact strictly: unknown fields are
// schema drift, the same contract the telemetry lines get.
func loadArtifact(path string) (*campaign.Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var art campaign.Artifact
	if err := dec.Decode(&art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%s: trailing content after artifact", path)
	}
	return &art, nil
}

func loadReport(path string) (*traffic.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep traffic.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// validate applies the line-sequence and per-line invariants.
func validate(lines []telemetry.Line) error {
	var prev *telemetry.Line
	for i := range lines {
		ln := &lines[i]
		if ln.Seq != int64(i) {
			return fmt.Errorf("line %d: seq %d, want %d", i+1, ln.Seq, i)
		}
		for k, v := range ln.Counters {
			if v < 0 {
				return fmt.Errorf("line %d: counter %s negative (%d)", i+1, k, v)
			}
		}
		for k, st := range ln.Timers {
			if err := checkTimer(k, st); err != nil {
				return fmt.Errorf("line %d: %w", i+1, err)
			}
		}
		if prev != nil {
			if ln.Frame < prev.Frame {
				return fmt.Errorf("line %d: frame went backwards (%d after %d)", i+1, ln.Frame, prev.Frame)
			}
			for k, pv := range prev.Counters {
				v, ok := ln.Counters[k]
				if !ok {
					return fmt.Errorf("line %d: counter %s disappeared (persistent-key contract)", i+1, k)
				}
				if v < pv {
					return fmt.Errorf("line %d: counter %s regressed %d -> %d", i+1, k, pv, v)
				}
			}
			for k := range prev.Gauges {
				if _, ok := ln.Gauges[k]; !ok {
					return fmt.Errorf("line %d: gauge %s disappeared", i+1, k)
				}
			}
			for k := range prev.Timers {
				if _, ok := ln.Timers[k]; !ok {
					return fmt.Errorf("line %d: timer %s disappeared", i+1, k)
				}
			}
		}
		prev = ln
	}
	return nil
}

func checkTimer(name string, st telemetry.TimerStats) error {
	if st.Count < 0 || st.Dropped < 0 || st.Dropped > st.Count {
		return fmt.Errorf("timer %s: inconsistent count/dropped %d/%d", name, st.Count, st.Dropped)
	}
	if st.Count == 0 {
		return nil
	}
	if !(st.Min <= st.Mean && st.Mean <= st.Max) {
		return fmt.Errorf("timer %s: min/mean/max out of order (%g/%g/%g)", name, st.Min, st.Mean, st.Max)
	}
	if !(st.Min <= st.P50 && st.P50 <= st.P90 && st.P90 <= st.P99 && st.P99 <= st.Max) {
		return fmt.Errorf("timer %s: percentiles out of order (%g/%g/%g in [%g, %g])",
			name, st.P50, st.P90, st.P99, st.Min, st.Max)
	}
	return nil
}

// reconcile checks the final flush's cumulative counters against the
// authoritative end-of-run report, exactly.
func reconcile(final telemetry.Line, rep *traffic.Report) error {
	want := map[string]int{
		"frames":            rep.Frames,
		"outage_frames":     rep.OutageFrames,
		"granted_cells":     rep.GrantedCells,
		"throttled_cells":   rep.ThrottledCells,
		"uplink_failures":   rep.UplinkFailures,
		"uplink_bit_errs":   rep.UplinkBitErrs,
		"delivered_packets": rep.DeliveredPackets,
		"delivered_bits":    rep.DeliveredBits,
		"dropped_queue":     rep.DroppedQueue,
		"dropped_reencode":  rep.DroppedReencode,
	}
	for _, cs := range rep.PerClass {
		p := "class." + cs.Class + "."
		want[p+"routed_packets"] = cs.RoutedPackets
		want[p+"dropped_queue"] = cs.DroppedQueue
		want[p+"dropped_reencode"] = cs.DroppedReencode
		want[p+"delivered_packets"] = cs.DeliveredPackets
		want[p+"delivered_bits"] = cs.DeliveredBits
	}
	for k, w := range want {
		got, ok := final.Counters[k]
		if !ok {
			return fmt.Errorf("counter %s missing from the final flush", k)
		}
		if got != int64(w) {
			return fmt.Errorf("counter %s = %d, report says %d", k, got, w)
		}
	}
	return nil
}
