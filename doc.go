// Package repro reproduces "Towards Generic Satellite Payloads: Software
// Radio" (Morlet, Boucheret, Calmettes, Paillassa, Perennou; IPPS/IPDPS
// Workshops 2003) as a runnable Go system: a regenerative MF-TDMA
// satellite payload whose digital functions (DEMUX, DEMOD, DECOD,
// switching) live on simulated SRAM FPGAs and are reconfigured in flight
// from a ground network control center over a TC/TM + IP + TFTP/SCPS-FP/
// COPS protocol stack, under a radiation environment with SEU mitigation.
//
// See DESIGN.md for the system inventory, the per-experiment index, the
// architecture of the concurrent per-carrier receive and transmit
// pipelines plus the sustained-load traffic engine, and the declarative
// scenario runtime (specs, presets, sessions and scripted events) that
// drives missions over the closed loop. The root-level benchmarks
// (bench_test.go) regenerate every table and figure; the same code is
// runnable via cmd/experiments, scripted runs via cmd/trafficsim
// (-scenario/-preset), and cmd/benchjson writes the pipeline/traffic/
// scenario numbers to BENCH_PR4.json for perf tracking.
package repro
