// Waveform migration (Fig 3): the return link starts as S-UMTS CDMA
// (2.048 Mcps, ~256 kbps); traffic demand grows, so the NCC uploads a
// TDMA demodulator (2 Mbps) and reconfigures the payload in flight. The
// example runs user traffic before, during and after the migration,
// showing the service interruption and the rate gain.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cdma"
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/modem"
	"repro/internal/ncc"
	"repro/internal/payload"
)

func main() {
	sys, err := core.NewSystem(core.DefaultSystemConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys.RunUntil(2)
	if err := sys.Payload.SetWaveform(payload.ModeCDMA); err != nil {
		log.Fatal(err)
	}
	sys.Payload.SetCodec("uncoded")

	cfg := sys.Payload.Config()
	fmt.Printf("phase 1 — CDMA return link at %.0f kbps (chip rate %.3f Mcps)\n",
		cfg.CDMA.BitRate()/1000, float64(cdma.ChipRateSUMTS)/1e6)

	// CDMA traffic.
	rng := rand.New(rand.NewSource(3))
	bits := make([]byte, 256)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	rx := cdma.NewModulator(cfg.CDMA).Modulate(bits)
	ch := dsp.NewChannel(4)
	ch.AWGN(rx, 0.2)
	if _, err := sys.Payload.DemodulateCarrier(0, rx); err != nil {
		log.Fatalf("CDMA traffic failed: %v", err)
	}
	fmt.Println("  CDMA burst demodulated OK")

	// Ground-initiated migration.
	fmt.Println("phase 2 — NCC migrates the waveform (upload + COPS policy + 5-step reload)")
	reports := sys.MigrateWaveform(payload.ModeTDMA, ncc.ProtoSCPSFP, 32)
	for _, r := range reports {
		fmt.Println("  " + r.String())
	}

	// During the reload the demod service was down; now TDMA runs.
	fmt.Printf("phase 3 — TDMA link at %.0f kbps (the 2 Mbps goal)\n",
		float64(modem.BitRateTDMA)/1000)
	f := sys.Payload.BurstFormat()
	burst := make([]byte, f.PayloadBits())
	for i := range burst {
		burst[i] = byte(rng.Intn(2))
	}
	tx := modem.NewBurstModulator(f, 0.35, 4, 10).Modulate(burst)
	rx2 := dsp.NewChannelWith(5, 12, 4).Apply(tx)
	if _, err := sys.Payload.DemodulateCarrier(0, rx2); err != nil {
		log.Fatalf("TDMA traffic failed: %v", err)
	}
	fmt.Println("  TDMA burst demodulated OK")
	fmt.Printf("throughput gain: %.1fx; same hardware profile (~200k gates each, sec 2.3)\n",
		float64(modem.BitRateTDMA)/cfg.CDMA.BitRate())
}
