// SEU campaign (§4.2-4.3): fly an SRAM-FPGA payload through quiet sun, a
// solar flare, and back, with and without configuration scrubbing, and
// watch the configuration-error occupancy and service availability. Also
// prints the TID lifetime budget for the MH1RT rating of Table 1.
package main

import (
	"fmt"

	"repro/internal/fpga"
	"repro/internal/radiation"
)

func main() {
	for _, scrub := range []bool{false, true} {
		d := fpga.NewDevice("demod-fpga", 32, 32)
		nl := fpga.NewNetlist("demod", 8)
		acc := 0
		for i := 1; i < 8; i++ {
			acc = nl.AddGate(fpga.LUTXor, acc, i)
		}
		nl.MarkOutput(acc)
		bs, err := nl.Compile(32, 32)
		if err != nil {
			panic(err)
		}
		if err := d.FullLoad(bs); err != nil {
			panic(err)
		}
		d.PowerOn()
		golden := fpga.Snapshot(d, "golden")

		label := "no mitigation"
		c := &radiation.Campaign{
			Device:   d,
			Golden:   golden,
			Injector: radiation.NewInjector(radiation.SRAMFPGA(), radiation.Environment{Orbit: radiation.GEO, Activity: radiation.SolarFlare}, 11),
			StepDays: 2,
		}
		if scrub {
			label = "readback-CRC scrubbing"
			c.Scrubber = fpga.NewReadbackScrubber(golden, fpga.DetectCRC)
			c.ScrubEverySteps = 1
		}
		res := c.Run(300)
		fmt.Printf("%-24s upsets=%4d  mean corrupt frames=%6.2f  max=%3d  availability=%.3f\n",
			label, res.UpsetsInjected, res.MeanCorruptFrames, res.MaxCorruptFrames, res.Availability)
		if scrub {
			_, writes, reads := d.Stats()
			fmt.Printf("%-24s config-port cost: %d readbacks, %d partial writes (only dirty frames rewritten)\n",
				"", reads, writes)
		}
	}

	// TID budget (Table 1): how long does the MH1RT rating last?
	fmt.Println()
	for _, prof := range []radiation.DeviceProfile{radiation.MH1RT(), radiation.MH1RTNext(), radiation.SRAMFPGA()} {
		dt := radiation.NewDoseTracker(prof)
		env := radiation.Environment{Orbit: radiation.GEO, Activity: radiation.SolarQuiet}
		fmt.Printf("%-14s TID rating %3.0f krad -> ~%.0f years at GEO quiet-sun dose rates\n",
			prof.Name, prof.TIDKrad, dt.MarginYears(env))
	}
}
