// Quickstart: run a complete scripted mission through the declarative
// scenario runtime — boot a regenerative TDMA payload from a preset
// spec, stream sustained DAMA-scheduled traffic through the closed
// loop (demodulate, decode, switch, re-encode, remodulate, ground
// verify) with a live per-frame observer, and watch the §2.3 decoder
// reconfiguration fire as a scripted mid-run event — the paper's
// software-radio concept in ~60 lines.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/scenario"
	"repro/internal/traffic"
)

func main() {
	// 1. A scenario is data: start from the swap-under-load preset
	//    (sustained mixed traffic with a conv -> turbo decoder swap
	//    scripted at the halfway frame) and trim it for a quick demo.
	//    The same spec round-trips through JSON — write it to a file,
	//    edit it, and feed it to `trafficsim -scenario file.json`.
	spec, err := scenario.Preset("swap-under-load")
	if err != nil {
		log.Fatal(err)
	}
	spec.Frames = 24
	spec.Events[0].Frame = 12
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q: %d frames, %d terminals, %d scripted event(s)\n",
		spec.Name, spec.Frames, len(spec.Terminals), len(spec.Events))

	// 2. A session executes it. Without an attached control plane the
	//    swap reconfigures the payload directly; build the session via
	//    core.System.NewSession instead to run the full ground procedure
	//    (upload, COPS policy push, five-step reload).
	sess, err := scenario.NewSession(spec,
		scenario.WithObserver(func(st scenario.FrameStats, report func() *traffic.Report) {
			for _, ev := range st.Events {
				fmt.Println("  >>", ev)
			}
			if st.Frame%6 == 0 {
				rep := report()
				fmt.Printf("  frame %2d: %d cells granted, %d packets down, %d bit errors so far\n",
					st.Frame, st.GrantedCells, st.DeliveredPackets, rep.UplinkBitErrs+rep.DownlinkBitErrs)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run to the scripted end (a context cancels cleanly at a frame
	//    boundary — useful when a mission is a service, not a batch).
	rep, err := sess.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// 4. The loopback contract across the reconfiguration: every
	//    delivered packet bit-identical, decoder hot-swapped under load.
	codec, _ := sess.Payload().Codec()
	fmt.Printf("\ndecoder now %s on the same hardware slot; %d packets delivered, %d bit errors end to end\n",
		codec.Name(), rep.DeliveredPackets, rep.UplinkBitErrs+rep.DownlinkBitErrs)

	// Where next: `trafficsim -list-presets` names the other missions —
	// try the `qos-priority` preset to watch the sharded switching
	// fabric hold EF voice traffic at zero drops through a best-effort
	// flash crowd (strict-priority downlink scheduling with a BE floor;
	// the run report breaks queues, drops and latency down per class).
}
