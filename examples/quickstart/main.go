// Quickstart: boot a regenerative payload, load a waveform and a decoder
// onto its FPGAs, pass one user packet through the full receive chain
// (demodulate, decode, switch), then swap the decoder — the paper's
// software-radio concept in ~60 lines.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/fec"
	"repro/internal/modem"
	"repro/internal/payload"
)

func main() {
	// 1. Boot the payload: one FPGA per equipment (Fig 2).
	pl, err := payload.New(payload.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := pl.SetWaveform(payload.ModeTDMA); err != nil {
		log.Fatal(err)
	}
	if err := pl.SetCodec("conv-r1/2-k9"); err != nil {
		log.Fatal(err)
	}
	codec, _ := pl.Codec()
	fmt.Printf("payload up: waveform=%s, decoder=%s\n", pl.Mode(), codec.Name())

	// 2. A user terminal transmits one convolutional-coded TDMA burst.
	f := pl.BurstFormat()
	rng := rand.New(rand.NewSource(7))
	info := make([]byte, 100)
	for i := range info {
		info[i] = byte(rng.Intn(2))
	}
	coded := codec.Encode(info)
	burst := make([]byte, f.PayloadBits())
	copy(burst, coded)
	tx := modem.NewBurstModulator(f, 0.35, 4, 10).Modulate(burst)

	// 3. The channel adds noise at Eb/N0 = 4 dB.
	ch := dsp.NewChannelWith(1, 4+10*math.Log10(2*codec.Rate()), 4)
	rx := ch.Apply(tx)

	// 4. The payload regenerates the packet on board.
	soft, err := pl.DemodulateCarrier(0, rx)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := pl.Decode(soft[:codec.EncodedLen(len(info))])
	if err != nil {
		log.Fatal(err)
	}
	errs := fec.CountBitErrors(info, dec[:len(info)])
	pl.Switch().Route(2, fec.PackBits(dec[:len(info)]))
	fmt.Printf("packet regenerated: %d bit errors, routed to beam 2 (queue depth %d)\n",
		errs, pl.Switch().QueueDepth(2))

	// 5. Reconfigure the decoder in place (§2.3: traffic mix changed).
	if err := pl.SetCodec("turbo-r1/3"); err != nil {
		log.Fatal(err)
	}
	codec, _ = pl.Codec()
	fmt.Printf("decoder reconfigured: now %s on the same hardware slot\n", codec.Name())
}
