// Delta update: instead of the five-step full reload (which takes the
// service down, §3.1), only the configuration frames that differ between
// the running design and the update are rewritten through the partial-
// configuration port — the Xilinx capability the paper uses for SEU
// scrubbing (§4.3), applied here to in-service updates. The demodulator
// keeps serving traffic throughout.
package main

import (
	"fmt"
	"log"

	"repro/internal/fpga"
	"repro/internal/obc"
	"repro/internal/sim"
)

func buildDesign(name string, gateType uint8, rows, cols int) *fpga.Bitstream {
	nl := fpga.NewNetlist(name, 8)
	acc := 0
	for i := 1; i < 8; i++ {
		acc = nl.AddGate(gateType, acc, i)
	}
	nl.MarkOutput(acc)
	bs, err := nl.Compile(rows, cols)
	if err != nil {
		log.Fatal(err)
	}
	return bs
}

func main() {
	s := sim.New()
	ctl := obc.NewController(s, obc.NewMemoryStore(0))
	dev := fpga.NewDevice("demod-fpga", 32, 32)
	v1 := buildDesign("demod-v1", fpga.LUTXor, 32, 32)
	if err := dev.FullLoad(v1); err != nil {
		log.Fatal(err)
	}
	dev.PowerOn()
	ctl.AddDevice(dev)
	ctl.Telemetry = func(l string) { fmt.Println("  TM " + l) }

	// v2 differs in a handful of frames.
	v2 := buildDesign("demod-v2", fpga.LUTOr, 32, 32)
	delta, err := obc.BuildDelta(v1, v2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delta: %d of %d frames differ (%d bytes vs %d for a full bitstream)\n",
		len(delta.Writes), dev.CLBs(), len(delta.Marshal()), len(v2.Marshal()))

	ctl.Store().Put("demod-v2.delta", delta.Marshal())

	// Watch power continuously while the update applies.
	lostPower := false
	var probe func()
	probe = func() {
		if s.Now() > 1 {
			return
		}
		if !dev.Powered() {
			lostPower = true
		}
		s.Schedule(0.0005, probe)
	}
	s.Schedule(0, probe)

	var res obc.PartialResult
	ctl.PartialReconfigure("demod-fpga", "demod-v2.delta", func(r obc.PartialResult) { res = r })
	s.Run()

	fmt.Printf("update applied: ok=%v frames=%d port time=%.4fs crc=%08x\n",
		res.OK, res.FramesWritten, res.Duration, res.CRC)
	fmt.Printf("service interruption: none (power stayed on: %v)\n", !lostPower)
	fullTime := float64(dev.CLBs()*fpga.FrameBytes*8) / obc.JTAGRateBps
	fmt.Printf("vs full reload: %.4fs of JTAG alone plus two power switches and a service outage\n", fullTime)
}
