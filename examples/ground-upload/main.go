// Ground upload (§3, Fig 4): the NCC pushes a decoder bitstream through
// the full protocol stack — SCPS-FP over TCP over IP with IPsec, carried
// in TC transfer frames over the GEO link — then commands the five-step
// reconfiguration and receives the CRC validation over telemetry. A
// second run demonstrates the rollback path with a corrupted file.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ftp"
	"repro/internal/ncc"
)

func main() {
	cfg := core.DefaultSystemConfig()
	cfg.IPsec = true
	cfg.BER = 1e-7 // a realistically quiet space link
	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.RunUntil(2)

	fmt.Println("uploading turbo decoder over SCPS-FP + IPsec + TC/TM ...")
	reports := sys.SwapDecoder("turbo-r1/3", ncc.ProtoSCPSFP, 32)
	for _, r := range reports {
		fmt.Println("  " + r.String())
	}
	c, err := sys.Payload.Codec()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on-board decoder: %s\n", c.Name())
	fmt.Println("telemetry received at the NCC:")
	for _, l := range sys.Telemetry {
		fmt.Println("  TM " + l)
	}

	// Failure path: stage a corrupt file and watch the rollback.
	fmt.Println("\nsimulating a corrupted upload (validation + rollback, sec 3.2):")
	bs := sys.Payload.DecodBitstreams("conv-r1/2-k9")["decod-fpga"]
	data := bs.Marshal()
	data[30] ^= 0xFF
	sys.Controller.Store().Put("corrupt.bit", data)
	before := len(sys.NCC.Reports)
	sys.NCC.PushPolicy(ftp.Policy{Device: "decod-fpga", Design: "corrupt.bit", Validate: true, Rollback: true})
	sys.Run()
	for _, r := range sys.NCC.Reports[before:] {
		fmt.Println("  COPS report: " + r)
	}
	c, _ = sys.Payload.Codec()
	fmt.Printf("decoder after failed load: %s (previous configuration restored)\n", c.Name())
}
